#!/usr/bin/env python
"""Domain example: the NPB-style CG kernel under C3, with overhead report.

Runs the conjugate-gradient kernel three ways on the Lemieux machine
model — original, C3 without checkpoints, C3 with checkpoints — and
prints the overhead decomposition the way Tables 2 and 4 report it, plus
a failure/recovery demonstration.

Run: ``python examples/cg_solver.py``
"""

from repro import (
    C3Config, FaultPlan, FaultSpec, InMemoryStorage, run_c3,
    run_fault_tolerant, run_original,
)
from repro.apps.cg import cg
from repro.mpi.timemodel import LEMIEUX

NPROCS = 8
PARAMS = dict(local_n=48, nnz_per_row=8, niter=16, work_scale=232.0)


def app(ctx):
    return cg(ctx, **PARAMS)


def main() -> None:
    orig = run_original(app, NPROCS, machine=LEMIEUX)
    orig.raise_errors()
    t1 = orig.virtual_time
    print(f"original:               {t1 * 1e3:9.3f} ms")

    no_ckpt, _ = run_c3(app, NPROCS, machine=LEMIEUX,
                        storage=InMemoryStorage(), config=C3Config())
    no_ckpt.raise_errors()
    t2 = no_ckpt.virtual_time
    print(f"C3, no checkpoints:     {t2 * 1e3:9.3f} ms   "
          f"(+{(t2 - t1) / t1 * 100:.2f}% protocol overhead)")

    with_ckpt, stats = run_c3(
        app, NPROCS, machine=LEMIEUX, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=t1 * 0.4, max_checkpoints=1))
    with_ckpt.raise_errors()
    t3 = with_ckpt.virtual_time
    st = stats[0]
    print(f"C3, one checkpoint:     {t3 * 1e3:9.3f} ms   "
          f"(checkpoint cost {(t3 - t2) * 1e3:.3f} ms, "
          f"{st.last_checkpoint_bytes / 1e3:.1f} kB/proc)")

    # Kill late enough that the overlapped write-back of line 1 has
    # drained to the node disks and committed: a line is only
    # restart-eligible once its background write completes — with four
    # ranks sharing each node's 35 MB/s disk the drain takes a few
    # virtual ms here — and a kill mid-drain leaves a torn line, so
    # recovery would fall back (to a cold start for line 1, still
    # producing the right answer).
    res = run_fault_tolerant(
        app, NPROCS, machine=LEMIEUX, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=t1 * 0.25),
        fault_plan=FaultPlan([FaultSpec(rank=5, at_time=t1 * 0.95)]))
    print(f"with rank-5 failure:    answer matches: "
          f"{abs(res.returns[0] - orig.returns[0]) < 1e-9}   "
          f"(recovered from v{res.stats[0].restored_version})")


if __name__ == "__main__":
    main()
