#!/usr/bin/env python
"""Protocol example: non-determinism logging and consistent replay.

A master rank consumes sequence-numbered results from workers with
``MPI_ANY_SOURCE`` wildcard receives.  Wildcard arrival order is
non-deterministic; what the C3 protocol guarantees across a failure is
*consistency*: during recovery the logged wildcard orders are replayed,
late messages come from the log exactly once, and suppressed sends are
never re-delivered — so the master sees, per worker, a contiguous
sequence with no message lost and none duplicated, even though the run
was killed in the middle.

This example kills the master mid-run and verifies message conservation:

* every (worker, sequence-number) pair is consumed exactly once;
* per worker the sequence numbers arrive strictly in order;
* the total count equals rounds x workers.

Run: ``python examples/wildcard_replay.py``
"""

import numpy as np

from repro import (
    C3Config, FaultPlan, FaultSpec, InMemoryStorage, run_fault_tolerant,
)
from repro.mpi.matching import ANY_SOURCE

ROUNDS = 30


def app(ctx):
    comm = ctx.comm
    rank, size = ctx.rank, ctx.size
    if ctx.first_time("setup"):
        # master: next expected sequence number per worker
        ctx.state.next_seq = np.zeros(size, dtype=np.int64)
        ctx.state.consumed = 0
        ctx.state.order_digest = 1.0
        ctx.done("setup")

    for rnd in ctx.range("round", ROUNDS):
        ctx.checkpoint()
        if rank == 0:
            for _ in range(size - 1):
                buf = np.zeros(2)
                st = comm.Recv(buf, source=ANY_SOURCE, tag=3)
                src, seq = st.source, int(buf[0])
                # conservation invariant: strictly in-order per source,
                # exactly once — across the failure and recovery
                if seq != int(ctx.state.next_seq[src]):
                    raise AssertionError(
                        f"master saw seq {seq} from worker {src}, expected "
                        f"{int(ctx.state.next_seq[src])}: a message was lost "
                        "or duplicated across recovery"
                    )
                ctx.state.next_seq[src] += 1
                ctx.state.consumed += 1
                # order-sensitive fold (persisted, so replay continuity shows)
                ctx.state.order_digest = (
                    ctx.state.order_digest * 1.0001 + seq * (src + 1)) % 1e9
            ctx.compute(2e-5)
        else:
            msg = np.array([float(rnd), float(rank)])
            comm.Send(msg, dest=0, tag=3)
            ctx.compute(1e-5 * rank)  # ranks progress at different speeds
    if rank == 0:
        assert ctx.state.consumed == ROUNDS * (size - 1)
        assert all(int(n) == ROUNDS for n in ctx.state.next_seq[1:])
    return int(ctx.state.consumed) if rank == 0 else 0


def main() -> None:
    nprocs = 5
    res = run_fault_tolerant(
        app, nprocs, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=2e-4),
        fault_plan=FaultPlan([FaultSpec(rank=0, at_time=8e-4)]))
    st = res.stats[0]
    print(f"master consumed {res.returns[0]} messages "
          f"({ROUNDS} rounds x {nprocs - 1} workers), restarts={res.restarts}")
    print(f"wildcard orders logged: {st.wildcard_logged}, "
          f"late messages replayed from the log: {st.replayed_from_log}, "
          f"sends suppressed: {st.suppressed_sends}")
    assert res.returns[0] == ROUNDS * (nprocs - 1)
    print("no message lost or duplicated across the failure — OK")


if __name__ == "__main__":
    main()
