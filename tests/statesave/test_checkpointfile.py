"""Checkpoint writer/reader: sections, commit, dry-run."""

import numpy as np
import pytest

from repro.statesave.checkpointfile import (
    CheckpointError, CheckpointReader, CheckpointWriter,
)
from repro.storage import InMemoryStorage, last_committed_local


@pytest.fixture
def store():
    return InMemoryStorage()


def test_save_load_roundtrip(store):
    w = CheckpointWriter(store, version=1, rank=0)
    w.save("app", {"x": np.arange(4.0), "n": 7})
    w.commit()
    r = CheckpointReader(store, version=1, rank=0)
    got = r.load("app")
    assert got["n"] == 7
    assert np.array_equal(got["x"], np.arange(4.0))


def test_commit_marker(store):
    w = CheckpointWriter(store, version=2, rank=1)
    w.save("app", 1)
    assert last_committed_local(store, 1) is None
    w.commit()
    assert last_committed_local(store, 1) == 2


def test_duplicate_section_rejected(store):
    w = CheckpointWriter(store, 1, 0)
    w.save("app", 1)
    with pytest.raises(CheckpointError):
        w.save("app", 2)


def test_save_after_commit_rejected(store):
    w = CheckpointWriter(store, 1, 0)
    w.commit()
    with pytest.raises(CheckpointError):
        w.save("late", 1)
    with pytest.raises(CheckpointError):
        w.commit()


def test_dry_run_counts_but_does_not_store(store):
    w = CheckpointWriter(store, 1, 0, dry_run=True)
    n = w.save("app", np.zeros(1000))
    assert n > 8000
    assert w.bytes_written == n
    w.commit()
    assert store.list() == []
    assert last_committed_local(store, 0) is None


def test_missing_section(store):
    w = CheckpointWriter(store, 1, 0)
    w.save("app", 1)
    w.commit()
    with pytest.raises(CheckpointError):
        CheckpointReader(store, 1, 0).load("nope")
    assert CheckpointReader(store, 1, 0).has("app")


def test_total_bytes_excludes_marker(store):
    w = CheckpointWriter(store, 1, 0)
    w.save("a", b"123")
    w.save("b", b"45")
    w.commit()
    r = CheckpointReader(store, 1, 0)
    assert r.total_bytes() == w.bytes_written


def test_portable_flag(store):
    w = CheckpointWriter(store, 1, 0, portable=True)
    w.save("app", np.arange(3, dtype=">i4"))
    w.commit()
    got = CheckpointReader(store, 1, 0).load("app")
    assert np.array_equal(got, [0, 1, 2])
