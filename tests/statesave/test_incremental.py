"""Incremental checkpointing (dirty pages, chains)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.statesave.incremental import (
    IncrementalError, IncrementalTracker, PAGE,
)


def test_first_save_is_full():
    t = IncrementalTracker()
    rec = t.encode({"a": np.zeros(1024)})
    assert rec["full"]
    assert rec["arrays"]["a"]["kind"] == "full"


def test_unchanged_array_costs_nothing():
    t = IncrementalTracker()
    a = np.zeros(2048)
    t.encode({"a": a})
    rec = t.encode({"a": a})
    assert not rec["full"]
    assert rec["arrays"]["a"]["kind"] == "delta"
    assert IncrementalTracker.record_bytes(rec) == 0


def test_only_dirty_pages_saved():
    t = IncrementalTracker()
    a = np.zeros(4 * PAGE // 8)  # 4 pages of float64
    t.encode({"a": a})
    a[0] = 1.0                   # dirty exactly one page
    rec = t.encode({"a": a})
    assert IncrementalTracker.record_bytes(rec) == PAGE


def test_chain_decode_reconstructs():
    t = IncrementalTracker()
    a = np.arange(PAGE // 8 * 3, dtype=np.float64)
    records = [t.encode({"a": a})]
    a[0] = -1.0
    records.append(t.encode({"a": a}))
    a[-1] = -2.0
    records.append(t.encode({"a": a}))
    out = IncrementalTracker.decode_chain(records)
    assert np.array_equal(out["a"], a)


def test_full_interval_forces_periodic_full():
    t = IncrementalTracker(full_interval=2)
    a = np.zeros(PAGE // 8)
    recs = [t.encode({"a": a}) for _ in range(4)]
    assert [r["full"] for r in recs] == [True, False, True, False]


def test_deleted_arrays_do_not_resurrect():
    t = IncrementalTracker()
    records = [t.encode({"a": np.ones(8), "b": np.ones(8)})]
    records.append(t.encode({"a": np.ones(8)}))  # b deleted
    out = IncrementalTracker.decode_chain(records)
    assert set(out) == {"a"}


def test_geometry_change_forces_full_entry():
    t = IncrementalTracker()
    t.encode({"a": np.zeros(PAGE // 8)})
    rec = t.encode({"a": np.zeros(PAGE // 8 * 2)})  # grew
    assert rec["arrays"]["a"]["kind"] == "full"


def test_dtype_change_same_nbytes_forces_full_entry():
    """Regression: equal byte length is not equal geometry.  A dtype flip
    with the same nbytes used to emit a delta whose metadata silently
    changed the chain's dtype mid-stream; it must be a full entry."""
    t = IncrementalTracker(full_interval=100)
    a = np.arange(PAGE // 8, dtype=np.float64)
    rec1 = t.encode({"a": a})
    b = a.view(np.int64).copy()          # same nbytes, same raw bytes
    rec2 = t.encode({"a": b})
    assert rec2["arrays"]["a"]["kind"] == "full"
    out = IncrementalTracker.decode_chain([rec1, rec2])
    assert out["a"].dtype == np.int64
    assert np.array_equal(out["a"], b)
    # and the chain up to the dtype flip still restores the old view
    out1 = IncrementalTracker.decode_chain([rec1])
    assert out1["a"].dtype == np.float64
    assert np.array_equal(out1["a"], a)


def test_shape_change_same_nbytes_forces_full_entry():
    t = IncrementalTracker(full_interval=100)
    t.encode({"a": np.zeros((2, PAGE // 16))})
    rec = t.encode({"a": np.zeros(PAGE // 8)})   # same nbytes, new shape
    assert rec["arrays"]["a"]["kind"] == "full"


def test_decode_rejects_geometry_flipping_delta():
    """A (pre-fix) chain whose delta silently changes dtype must now be
    rejected instead of reinterpreting the buffer."""
    t = IncrementalTracker(full_interval=100)
    a = np.arange(PAGE // 8, dtype=np.float64)
    rec1 = t.encode({"a": a})
    rec2 = t.encode({"a": a})                    # honest delta
    rec2["arrays"]["a"]["dtype"] = "<i8"         # forged geometry flip
    with pytest.raises(IncrementalError, match="geometry"):
        IncrementalTracker.decode_chain([rec1, rec2])


def test_chain_must_start_full():
    t = IncrementalTracker()
    a = np.zeros(PAGE // 8)
    t.encode({"a": a})
    a[0] = 1
    delta = t.encode({"a": a})
    with pytest.raises(IncrementalError):
        IncrementalTracker.decode_chain([delta])


def test_empty_chain():
    with pytest.raises(IncrementalError):
        IncrementalTracker.decode_chain([])


def test_bad_interval():
    with pytest.raises(ValueError):
        IncrementalTracker(full_interval=0)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.lists(st.integers(0, 5 * PAGE // 8 - 1), max_size=5),
                min_size=1, max_size=6))
def test_incremental_chain_property(mutation_rounds):
    """Property: decoding the chain always equals the final array state,
    no matter which elements were dirtied when."""
    t = IncrementalTracker(full_interval=100)
    a = np.zeros(5 * PAGE // 8)
    records = [t.encode({"a": a})]
    for round_muts in mutation_rounds:
        for idx in round_muts:
            a[idx] += 1.0
        records.append(t.encode({"a": a}))
    out = IncrementalTracker.decode_chain(records)
    assert np.array_equal(out["a"], a)
