"""Variable registry: scopes, registration, snapshot/restore."""

import numpy as np
import pytest

from repro.statesave.registry import RegistryError, VariableRegistry


@pytest.fixture
def reg():
    return VariableRegistry()


class TestScopes:
    def test_enter_leave(self, reg):
        reg.enter_scope("f")
        assert reg.depth == 2
        reg.leave_scope()
        assert reg.depth == 1

    def test_cannot_leave_global(self, reg):
        with pytest.raises(RegistryError):
            reg.leave_scope()

    def test_shadowing(self, reg):
        reg.register("x", 1)
        reg.enter_scope("f")
        reg.register("x", 2)
        assert reg.lookup("x") == 2
        reg.leave_scope()
        assert reg.lookup("x") == 1


class TestRegistration:
    def test_register_and_lookup(self, reg):
        a = np.zeros(4)
        reg.register("a", a)
        assert reg.lookup("a") is a
        assert "a" in reg

    def test_duplicate_in_same_scope(self, reg):
        reg.register("x", 1)
        with pytest.raises(RegistryError):
            reg.register("x", 2)

    def test_unregister(self, reg):
        reg.register("x", 1)
        reg.unregister("x")
        assert "x" not in reg
        with pytest.raises(RegistryError):
            reg.unregister("x")

    def test_update_scalar(self, reg):
        reg.register("n", 1)
        reg.update("n", 5)
        assert reg.lookup("n") == 5

    def test_update_unknown(self, reg):
        with pytest.raises(RegistryError):
            reg.update("nope", 0)


class TestAccounting:
    def test_live_bytes(self, reg):
        reg.register("a", np.zeros(100))       # 800 bytes
        reg.register("n", 3)                   # 16 bytes nominal
        assert reg.live_bytes == 816

    def test_descriptors(self, reg):
        reg.register("a", np.zeros((2, 3), dtype=np.float32))
        reg.enter_scope("f")
        reg.register("n", 7)
        descs = {d.name: d for d in reg.descriptors()}
        assert descs["<globals>:a"].kind == "array"
        assert descs["<globals>:a"].shape == (2, 3)
        assert descs["f:n"].kind == "scalar"


class TestSnapshotRestore:
    def test_arrays_restored_in_place(self, reg):
        a = np.arange(4.0)
        reg.register("a", a)
        snap = reg.snapshot()
        a[:] = 0.0
        reg.restore(snap)
        assert np.array_equal(a, np.arange(4.0))  # same object refilled

    def test_scope_structure_must_match(self, reg):
        reg.register("x", 1)
        snap = reg.snapshot()
        reg.enter_scope("extra")
        with pytest.raises(RegistryError):
            reg.restore(snap)

    def test_scope_name_must_match(self, reg):
        reg.enter_scope("f")
        snap = reg.snapshot()
        reg.leave_scope()
        reg.enter_scope("g")
        with pytest.raises(RegistryError):
            reg.restore(snap)

    def test_shape_mismatch_rejected(self, reg):
        a = np.zeros(4)
        reg.register("a", a)
        snap = reg.snapshot()
        snap["scopes"][0]["vars"]["a"] = np.zeros(5)
        with pytest.raises(RegistryError):
            reg.restore(snap)
