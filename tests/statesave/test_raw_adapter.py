"""RawCommAdapter: the original-mode communicator surface."""

import numpy as np
import pytest

from repro.mpi import DOUBLE
from repro.statesave.context import Context, RawCommAdapter
from repro.testutil import run


def test_adapter_passthrough_and_identity():
    def main(mpi):
        ctx = Context(mpi)
        assert isinstance(ctx.comm, RawCommAdapter)
        return (ctx.comm.rank, ctx.comm.size, ctx.rank, ctx.size)

    result = run(3, main)
    assert result.returns[1] == (1, 3, 1, 3)


def test_adapter_wraps_created_communicators():
    def main(mpi):
        ctx = Context(mpi)
        dup = ctx.comm.Dup()
        split = ctx.comm.Split(color=0, key=ctx.rank)
        cart = ctx.comm.Cart_create((mpi.size,), (True,))
        # the protocol-style completion surface must exist on all of them
        return all(hasattr(c, "Waitall") and hasattr(c, "Wait")
                   for c in (dup, split, cart))

    assert all(run(2, main).returns)


def test_adapter_split_undefined_color():
    def main(mpi):
        ctx = Context(mpi)
        sub = ctx.comm.Split(color=0 if ctx.rank == 0 else -1)
        return sub is None

    assert run(2, main).returns == [False, True]


def test_adapter_wait_family():
    def main(mpi):
        ctx = Context(mpi)
        comm = ctx.comm
        r, s = ctx.rank, ctx.size
        bufs = [np.zeros(1), np.zeros(1)]
        reqs = [comm.Irecv(bufs[i], source=(r - 1) % s, tag=i)
                for i in range(2)]
        for i in range(2):
            comm.Send(np.array([float(i)]), dest=(r + 1) % s, tag=i)
        idx, st = comm.Waitany(reqs)
        done, st2 = comm.Test(reqs[1 - idx])
        if not done:
            comm.Wait(reqs[1 - idx])
        return sorted([bufs[0][0], bufs[1][0]])

    assert run(3, main).returns[0] == [0.0, 1.0]


def test_adapter_datatype_constructors():
    def main(mpi):
        ctx = Context(mpi)
        vec = ctx.comm.Type_vector(2, 1, 2, DOUBLE)
        vec.Commit()
        a = np.arange(4.0)
        return np.frombuffer(vec.pack(a, 1), dtype=np.float64).tolist()

    assert run(1, main).returns[0] == [0.0, 2.0]


def test_adapter_cart_shift():
    def main(mpi):
        ctx = Context(mpi)
        cart = ctx.comm.Cart_create((mpi.size,), (True,))
        return cart.Shift(0, 1)

    result = run(4, main)
    assert result.returns[0] == (3, 1)
