"""Application Context: state, resumable ranges, guards, phases."""

import numpy as np
import pytest

from repro.statesave.context import AppState, Context, StateError
from repro.testutil import run


def make_ctx():
    holder = {}

    def main(mpi):
        holder["ctx"] = Context(mpi)
        return True

    run(1, main)
    return holder["ctx"]


class TestAppState:
    def test_attribute_and_item_access(self):
        s = AppState()
        s.x = 1
        assert s["x"] == 1
        s["y"] = 2
        assert s.y == 2

    def test_missing_key(self):
        s = AppState()
        with pytest.raises(StateError):
            s["nope"]
        with pytest.raises(AttributeError):
            s.nope

    def test_iteration_and_len(self):
        s = AppState({"a": 1, "b": 2})
        assert sorted(s) == ["a", "b"]
        assert len(s) == 2

    def test_delete(self):
        s = AppState({"a": 1})
        del s["a"]
        assert "a" not in s

    def test_nbytes(self):
        s = AppState()
        s.arr = np.zeros(10)       # 80
        s.blob = b"12345"          # 5
        s.num = 3                  # 16 nominal
        assert s.nbytes == 101

    def test_replace_all(self):
        s = AppState({"a": 1})
        s.replace_all({"b": 2})
        assert "a" not in s and s.b == 2


class TestResumableRange:
    def test_plain_iteration(self):
        ctx = make_ctx()
        assert list(ctx.range("i", 5)) == [0, 1, 2, 3, 4]
        assert ctx.state["__loop_i"] == 5

    def test_start_stop_step(self):
        ctx = make_ctx()
        assert list(ctx.range("i", 2, 8, 3)) == [2, 5]

    def test_resume_from_saved_counter(self):
        ctx = make_ctx()
        ctx.state["__loop_i"] = 3
        assert list(ctx.range("i", 10)) == list(range(3, 10))

    def test_nonpositive_step(self):
        ctx = make_ctx()
        with pytest.raises(StateError):
            list(ctx.range("i", 0, 5, 0))


class TestGuards:
    def test_first_time_done(self):
        ctx = make_ctx()
        assert ctx.first_time("init")
        ctx.done("init")
        assert not ctx.first_time("init")

    def test_once(self):
        ctx = make_ctx()
        calls = []
        ctx.once("x", lambda: calls.append(1))
        ctx.once("x", lambda: calls.append(2))
        assert calls == [1]


class TestPhases:
    def test_phase_tracks_loop_iteration(self):
        ctx = make_ctx()
        log = []
        for it in ctx.range("L", 3):
            if ctx.phase_pending("L", "a"):
                log.append(("a", it))
                ctx.phase_done("L", "a")
            if ctx.phase_pending("L", "b"):
                log.append(("b", it))
                ctx.phase_done("L", "b")
        assert log == [("a", 0), ("b", 0), ("a", 1), ("b", 1),
                       ("a", 2), ("b", 2)]

    def test_phase_skipped_after_restore_mid_iteration(self):
        ctx = make_ctx()
        # simulate: checkpoint taken between phase a and b of iteration 1
        ctx.state["__loop_L"] = 1
        ctx.state["__phase_L_a"] = 1
        log = []
        for it in ctx.range("L", 3):
            if ctx.phase_pending("L", "a"):
                log.append(("a", it))
                ctx.phase_done("L", "a")
            if ctx.phase_pending("L", "b"):
                log.append(("b", it))
                ctx.phase_done("L", "b")
        assert log == [("b", 1), ("a", 2), ("b", 2)]

    def test_phase_outside_loop(self):
        ctx = make_ctx()
        with pytest.raises(StateError):
            ctx.phase_pending("nope", "x")


class TestSnapshot:
    def test_roundtrip(self):
        ctx = make_ctx()
        ctx.state.x = np.arange(3.0)
        ctx.state.n = 5
        ctx.pragma_count = 2
        snap = ctx.snapshot_state()
        ctx2 = make_ctx()
        ctx2.restore_state(snap)
        assert np.array_equal(ctx2.state.x, np.arange(3.0))
        assert ctx2.state.n == 5
        assert ctx2.restored
        assert ctx2.pragma_count == 2

    def test_checkpoint_bytes(self):
        ctx = make_ctx()
        ctx.state.x = np.zeros(100)
        assert ctx.checkpoint_bytes >= 800
