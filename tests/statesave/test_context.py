"""Application Context: state, resumable ranges, guards, phases."""

import numpy as np
import pytest

from repro.statesave.context import AppState, Context, StateError
from repro.testutil import run


def make_ctx():
    holder = {}

    def main(mpi):
        holder["ctx"] = Context(mpi)
        return True

    run(1, main)
    return holder["ctx"]


class TestAppState:
    def test_attribute_and_item_access(self):
        s = AppState()
        s.x = 1
        assert s["x"] == 1
        s["y"] = 2
        assert s.y == 2

    def test_missing_key(self):
        s = AppState()
        with pytest.raises(StateError):
            s["nope"]
        with pytest.raises(AttributeError):
            s.nope

    def test_iteration_and_len(self):
        s = AppState({"a": 1, "b": 2})
        assert sorted(s) == ["a", "b"]
        assert len(s) == 2

    def test_delete(self):
        s = AppState({"a": 1})
        del s["a"]
        assert "a" not in s

    def test_nbytes(self):
        s = AppState()
        s.arr = np.zeros(10)       # 80
        s.blob = b"12345"          # 5
        s.num = 3                  # 16 nominal
        assert s.nbytes == 101

    def test_nbytes_recurses_into_containers(self):
        s = AppState()
        s.levels = [np.zeros(8), np.zeros(4)]      # 64 + 32
        s.table = {"k": np.zeros(2), "s": "abc"}   # 16 + 3
        s.pair = (b"xy", 1)                        # 2 + 16
        assert s.nbytes == 64 + 32 + 16 + 3 + 2 + 16

    def test_replace_all(self):
        s = AppState({"a": 1})
        s.replace_all({"b": 2})
        assert "a" not in s and s.b == 2


class TestResumableRange:
    def test_plain_iteration(self):
        ctx = make_ctx()
        assert list(ctx.range("i", 5)) == [0, 1, 2, 3, 4]
        # a completed loop is popped off the position stack
        assert "__loop_i" not in ctx.state

    def test_counter_persists_while_running(self):
        ctx = make_ctx()
        seen = []
        for i in ctx.range("i", 4):
            seen.append(ctx.state["__loop_i"])
        assert seen == [0, 1, 2, 3]

    def test_start_stop_step(self):
        ctx = make_ctx()
        assert list(ctx.range("i", 2, 8, 3)) == [2, 5]

    def test_resume_from_saved_counter(self):
        ctx = make_ctx()
        ctx.state["__loop_i"] = 3
        assert list(ctx.range("i", 10)) == list(range(3, 10))

    def test_nonpositive_step(self):
        ctx = make_ctx()
        with pytest.raises(StateError):
            list(ctx.range("i", 0, 5, 0))

    def test_nested_loops_reenter_fresh(self):
        """The inner loop must run fully in EVERY outer iteration — the
        position stack pops an inner loop when it completes (pre-fix, the
        persisted counter made later re-entries skip the loop body)."""
        ctx = make_ctx()
        log = []
        for i in ctx.range("outer", 3):
            for j in ctx.range("inner", 2):
                log.append((i, j))
        assert log == [(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]
        assert "__loop_outer" not in ctx.state
        assert "__loop_inner" not in ctx.state

    def test_nested_loop_position_stack_resumes(self):
        """Restoring a (outer, inner) counter pair resumes mid-inner-loop
        and later outer iterations re-run the inner loop from 0."""
        ctx = make_ctx()
        ctx.state["__loop_outer"] = 1
        ctx.state["__loop_inner"] = 1
        log = []
        for i in ctx.range("outer", 3):
            for j in ctx.range("inner", 2):
                log.append((i, j))
        assert log == [(1, 1), (2, 0), (2, 1)]

    def test_break_pops_the_loop(self):
        ctx = make_ctx()
        for i in ctx.range("i", 10):
            if i == 4:
                break
        assert "__loop_i" not in ctx.state

    def test_exit_clears_phase_markers(self):
        ctx = make_ctx()
        for i in ctx.range("L", 2):
            if ctx.phase_pending("L", "a"):
                ctx.phase_done("L", "a")
        assert not [k for k in ctx.state if k.startswith("__phase_L")]

    def test_completed_loop_skipped_on_reexecution(self):
        """Re-reaching a loop that completed at the same position (the
        post-restore re-execution path) must skip it, not re-run it —
        its effects are already in the checkpointed state."""
        ctx = make_ctx()
        assert list(ctx.range("a", 3)) == [0, 1, 2]
        assert list(ctx.range("a", 3)) == []

    def test_sequential_loops_resume_into_the_second(self):
        """Regression (code review): with the first loop completed and
        the second mid-flight, 'restoring' that state and re-executing
        must skip loop a entirely and resume loop b."""
        ctx = make_ctx()
        log = []
        for i in ctx.range("a", 3):
            log.append(("a", i))
        for i in ctx.range("b", 5):
            log.append(("b", i))
            if i == 2:
                break  # "kill" mid-loop-b: state now holds the snapshot
        snapshot = dict(ctx.state.to_dict())
        snapshot["__loop_b"] = 2   # break popped it; a checkpoint would not
        ctx2 = make_ctx()
        ctx2.state.replace_all(snapshot)
        relog = []
        for i in ctx2.range("a", 3):
            relog.append(("a", i))
        for i in ctx2.range("b", 5):
            relog.append(("b", i))
        assert relog == [("b", 2), ("b", 3), ("b", 4)]

    def test_reentering_a_running_loop_name_raises(self):
        """Regression (code review): nesting two loops under one name
        would alias their counters; fail loudly instead."""
        ctx = make_ctx()
        with pytest.raises(StateError, match="already running"):
            for i in ctx.range("a", 2):
                for j in ctx.range("a", 2):
                    pass

    def test_phase_markers_of_prefix_sharing_loops_are_independent(self):
        """Regression (code review): clearing loop 'step's markers must
        not wipe live markers of a loop named 'step_outer'."""
        ctx = make_ctx()
        for o in ctx.range("step_outer", 2):
            if ctx.phase_pending("step_outer", "down"):
                ctx.phase_done("step_outer", "down")
            for i in ctx.range("step", 2):
                pass
            # the inner loop's exit cleanup ran; the outer marker survives
            assert not ctx.phase_pending("step_outer", "down")


class TestWhileRange:
    def test_counts_until_break(self):
        ctx = make_ctx()
        seen = []
        for i in ctx.while_range("w"):
            if i >= 3:
                break
            seen.append(i)
        assert seen == [0, 1, 2]
        assert "__loop_w" not in ctx.state

    def test_resumes_from_saved_counter(self):
        ctx = make_ctx()
        ctx.state["__loop_w"] = 5
        it = iter(ctx.while_range("w"))
        assert next(it) == 5
        assert ctx.state["__loop_w"] == 5
        it.close()


class TestGuards:
    def test_first_time_done(self):
        ctx = make_ctx()
        assert ctx.first_time("init")
        ctx.done("init")
        assert not ctx.first_time("init")

    def test_once(self):
        ctx = make_ctx()
        calls = []
        ctx.once("x", lambda: calls.append(1))
        ctx.once("x", lambda: calls.append(2))
        assert calls == [1]


class TestPhases:
    def test_phase_tracks_loop_iteration(self):
        ctx = make_ctx()
        log = []
        for it in ctx.range("L", 3):
            if ctx.phase_pending("L", "a"):
                log.append(("a", it))
                ctx.phase_done("L", "a")
            if ctx.phase_pending("L", "b"):
                log.append(("b", it))
                ctx.phase_done("L", "b")
        assert log == [("a", 0), ("b", 0), ("a", 1), ("b", 1),
                       ("a", 2), ("b", 2)]

    def test_phase_skipped_after_restore_mid_iteration(self):
        ctx = make_ctx()
        # simulate: checkpoint taken between phase a and b of iteration 1
        ctx.state["__loop_L"] = 1
        ctx.state["__phase_L::a"] = 1
        log = []
        for it in ctx.range("L", 3):
            if ctx.phase_pending("L", "a"):
                log.append(("a", it))
                ctx.phase_done("L", "a")
            if ctx.phase_pending("L", "b"):
                log.append(("b", it))
                ctx.phase_done("L", "b")
        assert log == [("b", 1), ("a", 2), ("b", 2)]

    def test_phase_outside_loop(self):
        ctx = make_ctx()
        with pytest.raises(StateError):
            ctx.phase_pending("nope", "x")


class TestSnapshot:
    def test_roundtrip(self):
        ctx = make_ctx()
        ctx.state.x = np.arange(3.0)
        ctx.state.n = 5
        ctx.pragma_count = 2
        snap = ctx.snapshot_state()
        ctx2 = make_ctx()
        ctx2.restore_state(snap)
        assert np.array_equal(ctx2.state.x, np.arange(3.0))
        assert ctx2.state.n == 5
        assert ctx2.restored
        assert ctx2.pragma_count == 2

    def test_checkpoint_bytes(self):
        ctx = make_ctx()
        ctx.state.x = np.zeros(100)
        assert ctx.checkpoint_bytes >= 800
