"""Checkpoint serialization: binary and portable formats."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as npst

from repro.statesave.serializer import (
    SerializationError, Serializer, dumps, loads,
)


class TestScalars:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, 1, -1, 12345678901234567890, -2**70,
        0.0, 3.14159, float("inf"), 1 + 2j, "", "hello", "ünïcødé",
        b"", b"\x00\xff" * 10,
    ])
    def test_roundtrip(self, value):
        got = loads(dumps(value))
        assert got == value
        assert type(got) is type(value)

    def test_nan(self):
        got = loads(dumps(float("nan")))
        assert got != got  # NaN


class TestContainers:
    def test_nested(self):
        value = {"a": [1, 2, (3, "x")], "b": {"c": b"bytes"},
                 (1, 2): None, 7: [True]}
        assert loads(dumps(value)) == value

    def test_list_vs_tuple_preserved(self):
        assert loads(dumps([1, 2])) == [1, 2]
        assert loads(dumps((1, 2))) == (1, 2)
        assert isinstance(loads(dumps((1,))), tuple)

    def test_empty_containers(self):
        assert loads(dumps([])) == []
        assert loads(dumps({})) == {}
        assert loads(dumps(())) == ()


class TestArrays:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32, np.int32,
                                       np.int64, np.uint8, np.complex128,
                                       np.bool_])
    def test_dtype_roundtrip(self, dtype):
        a = np.arange(12).astype(dtype).reshape(3, 4)
        b = loads(dumps(a))
        assert b.dtype == a.dtype
        assert np.array_equal(a, b)

    def test_empty_array(self):
        a = np.zeros((0, 5))
        b = loads(dumps(a))
        assert b.shape == (0, 5)

    def test_fortran_order_normalized(self):
        a = np.asfortranarray(np.arange(6.0).reshape(2, 3))
        b = loads(dumps(a))
        assert np.array_equal(a, b)

    def test_object_dtype_rejected(self):
        with pytest.raises(SerializationError):
            dumps(np.array([object()]))

    def test_portable_format_normalizes_byte_order(self):
        big = np.arange(4, dtype=">f8")
        payload = Serializer(portable=True).dumps(big)
        back = loads(payload)
        assert np.array_equal(back, big.astype(np.float64))
        assert back.dtype.byteorder in ("<", "=")


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(SerializationError):
            loads(b"XXXX\x01\x00\x00")

    def test_truncated(self):
        with pytest.raises(SerializationError):
            loads(b"C3")

    def test_trailing_garbage(self):
        with pytest.raises(SerializationError):
            loads(dumps(1) + b"junk")

    def test_unsupported_type(self):
        with pytest.raises(SerializationError):
            dumps(object())

    def test_bad_version(self):
        payload = bytearray(dumps(1))
        payload[4] = 99
        with pytest.raises(SerializationError):
            loads(bytes(payload))


json_like = st.recursive(
    st.none() | st.booleans() | st.integers(-2**80, 2**80)
    | st.floats(allow_nan=False) | st.text(max_size=20)
    | st.binary(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=5), children, max_size=4),
    max_leaves=20,
)


@settings(max_examples=80, deadline=None)
@given(json_like)
def test_roundtrip_property(value):
    assert loads(dumps(value)) == value


@settings(max_examples=40, deadline=None)
@given(npst.arrays(
    dtype=st.sampled_from([np.float64, np.int32, np.uint8, np.complex64]),
    shape=npst.array_shapes(max_dims=3, max_side=6),
))
def test_array_roundtrip_property(a):
    b = loads(dumps(a))
    assert b.dtype == a.dtype and b.shape == a.shape
    assert np.array_equal(a, b, equal_nan=True)


@settings(max_examples=40, deadline=None)
@given(json_like)
def test_portable_and_binary_agree(value):
    assert (Serializer(portable=True).dumps(value) != b""
            and loads(Serializer(portable=True).dumps(value))
            == loads(Serializer(portable=False).dumps(value)))
