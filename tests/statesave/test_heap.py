"""Simulated heap: allocation, image accounting, snapshot/restore."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.statesave.heap import HeapError, SimHeap


class TestAllocation:
    def test_addresses_are_stable_and_distinct(self):
        h = SimHeap()
        a = h.malloc(100, "a")
        b = h.malloc(100, "b")
        assert a != b
        assert h.block(a).label == "a"

    def test_free_and_reuse(self):
        h = SimHeap()
        a = h.malloc(256)
        h.free(a)
        b = h.malloc(128)
        assert b == a  # first-fit reuses the freed block

    def test_double_free(self):
        h = SimHeap()
        a = h.malloc(10)
        h.free(a)
        with pytest.raises(HeapError):
            h.free(a)

    def test_negative_size(self):
        with pytest.raises(HeapError):
            SimHeap().malloc(-1)

    def test_alloc_array(self):
        h = SimHeap()
        addr, arr = h.alloc_array((4, 4), dtype=np.float32)
        assert arr.shape == (4, 4)
        assert h.block(addr).data is arr


class TestAccounting:
    def test_live_vs_image(self):
        h = SimHeap(static_segment_bytes=1000, stack_bytes=500)
        a = h.malloc(1024)
        b = h.malloc(2048)
        h.free(a)
        assert h.live_bytes == 2048
        # the image keeps the freed extent + static segment + stack
        assert h.image_bytes >= 1000 + 500 + 1024 + 2048

    def test_image_never_shrinks(self):
        h = SimHeap()
        a = h.malloc(4096)
        before = h.image_bytes
        h.free(a)
        assert h.image_bytes == before


class TestSnapshot:
    def test_roundtrip_restores_addresses_and_data(self):
        h = SimHeap(static_segment_bytes=64)
        addr, arr = h.alloc_array(8)
        arr[:] = np.arange(8.0)
        tmp = h.malloc(100)
        h.free(tmp)
        snap = h.snapshot()
        h2 = SimHeap.from_snapshot(snap)
        assert h2.live_bytes == h.live_bytes
        assert h2.image_bytes == h.image_bytes
        block = h2.block(addr)           # original address still valid
        assert np.array_equal(block.data, np.arange(8.0))

    def test_corrupt_snapshot(self):
        from repro.statesave.serializer import SerializationError
        with pytest.raises(SerializationError):
            SimHeap.from_snapshot({"bogus": 1})


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(1, 4096)),
                min_size=1, max_size=30))
def test_heap_invariants_property(ops):
    """Property: live_bytes == sum of live allocations; image >= live;
    no address is handed out twice while live."""
    h = SimHeap()
    live = {}
    for do_free, size in ops:
        if do_free and live:
            addr = next(iter(live))
            h.free(addr)
            del live[addr]
        else:
            addr = h.malloc(size)
            assert addr not in live
            live[addr] = size
    assert h.live_bytes == sum(live.values())
    assert h.image_bytes - h.static_segment_bytes - h.stack_bytes >= \
        h.live_bytes
