"""Incremental checkpointing integrated with the C3 protocol."""

import numpy as np
import pytest

from repro.core import C3Config, run_c3, run_fault_tolerant, run_original
from repro.mpi import FaultPlan, FaultSpec
from repro.storage import InMemoryStorage, checkpoint_bytes


def sparse_writer_app(ctx):
    """A large state array of which only a sliver changes per iteration —
    the workload incremental checkpointing exists for."""
    comm = ctx.comm
    r, s = ctx.rank, ctx.size
    if ctx.first_time("setup"):
        ctx.state.big = np.zeros(64 * 1024 // 8)   # 64 KiB
        ctx.state.acc = 0.0
        ctx.done("setup")
    for it in ctx.range("i", 12):
        ctx.checkpoint()
        ctx.state.big[it] = float(it + r)          # one dirty page
        comm.Send(np.array([float(it)]), dest=(r + 1) % s, tag=1)
        buf = np.zeros(1)
        comm.Recv(buf, source=(r - 1) % s, tag=1)
        ctx.state.acc += float(buf[0])
        ctx.compute(1e-4)
    return round(float(ctx.state.big.sum() + ctx.state.acc), 9)


def test_incremental_checkpoints_are_smaller():
    full_store = InMemoryStorage()
    # gc_lines=False so v2 of the full run survives for the comparison
    # (the incremental run's v2 is pinned by its decode chain anyway)
    res_full, _ = run_c3(sparse_writer_app, 2, storage=full_store,
                         config=C3Config(checkpoint_interval=2.5e-4,
                                         gc_lines=False))
    res_full.raise_errors()

    incr_store = InMemoryStorage()
    res_incr, stats = run_c3(
        sparse_writer_app, 2, storage=incr_store,
        config=C3Config(checkpoint_interval=2.5e-4, incremental=True,
                        incremental_full_interval=100))
    res_incr.raise_errors()
    assert res_incr.returns == res_full.returns
    committed = stats[0].checkpoints_committed
    assert committed >= 2
    # the first checkpoint is full; later ones carry only dirty pages
    first = checkpoint_bytes(full_store, 2, 0)
    later = checkpoint_bytes(incr_store, 2, 0)
    assert later < first / 4


def test_incremental_recovery_exact():
    ref = run_original(sparse_writer_app, 2)
    ref.raise_errors()
    T = ref.virtual_time
    res = run_fault_tolerant(
        sparse_writer_app, 2, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=T * 0.12, incremental=True,
                        incremental_full_interval=3),
        fault_plan=FaultPlan([FaultSpec(rank=0, at_time=T * 0.75)]))
    assert res.restarts == 1
    assert res.stats[0].restored_version >= 2  # restored through a chain
    assert res.returns == ref.returns


def test_incremental_recovery_from_delta_version():
    """Restore from a version whose record is a delta: the chain walk must
    reach back to the full save."""
    ref = run_original(sparse_writer_app, 2)
    ref.raise_errors()
    T = ref.virtual_time
    res = run_fault_tolerant(
        sparse_writer_app, 2, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=T * 0.1, incremental=True,
                        incremental_full_interval=100),  # only v1 is full
        fault_plan=FaultPlan([FaultSpec(rank=1, at_time=T * 0.8)]))
    assert res.restarts == 1
    assert res.stats[0].restored_version >= 3
    assert res.returns == ref.returns
