"""Campaign slice over the WAL storage engine.

The log-structured store's failure modes are storage-shaped, not
protocol-shaped: a COMMIT record can be staged but unsynced when its
rank dies (the group-commit window), and the failed node's page cache
tears the last staged record (the torn-record window).  These scenarios
drive both through the same golden/clean/kill/restart/verify pipeline
the CLI and the ``wal-storage`` CI job run, on the in-memory and the
real-file backend.
"""

import pytest

from repro.apps import APPS
from repro.core import C3Config, run_fault_tolerant, run_original
from repro.harness.campaign import (
    APP_KERNELS, CAMPAIGN_PARAMS, WAL_STORAGES, Scenario, _measure_scenario,
    build_matrix, run_campaign, smoke_matrix,
)
from repro.harness.runner import measure_recovery
from repro.mpi import FaultPlan, FaultSpec
from repro.mpi.timemodel import MACHINES
from repro.storage import DiskStorage, InMemoryStorage, WalStore, as_store


def _run_one(scenario: Scenario):
    report = run_campaign([scenario], parallel=False)
    assert len(report.rows) == 1
    return report.rows[0]


# ---------------------------------------------------------------------------
# Matrix construction
# ---------------------------------------------------------------------------

def test_wal_only_timings_skip_scatter_storage():
    for storage in ("memory", "disk"):
        assert build_matrix(["heat"], ["testing"],
                            ["mid_group_commit", "torn_record"],
                            storage=storage) == []
    for storage in sorted(WAL_STORAGES):
        scenarios = build_matrix(["heat"], ["testing"],
                                 ["mid_group_commit", "torn_record"],
                                 storage=storage)
        assert {s.kill for s in scenarios} == {"mid_group_commit",
                                               "torn_record"}
        assert all(s.label.endswith(f"@{storage}") for s in scenarios)


def test_wal_smoke_rotation_includes_group_commit_windows():
    kills = {s.kill for s in smoke_matrix(storage="wal")}
    assert {"mid_group_commit", "torn_record"} <= kills
    assert {s.app for s in smoke_matrix(storage="wal")} == set(APP_KERNELS)
    # the scatter rotation stays as it was
    assert "torn_record" not in {s.kill for s in smoke_matrix()}


# ---------------------------------------------------------------------------
# The group-commit kill windows, end to end
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kill", ["mid_group_commit", "torn_record"])
@pytest.mark.parametrize("app", ["heat", "CG"])
def test_group_commit_windows_recover_exactly(app, kill):
    [scenario] = build_matrix([app], ["testing"], [kill], storage="wal")
    row = _run_one(scenario)
    assert row["passed"], row["failure"]
    assert row["fired"], "the group-commit kill must actually fire"
    assert any("group commit" in f for f in row["fired"])
    assert row["restarts"] >= 1
    assert row["verified_recovery"] and row["verified_clean"]
    # segment GC on the restarted store: steady state holds <= 2 lines
    assert row["lines_retained"] <= 2


@pytest.mark.parametrize("kill", ["mid_group_commit", "torn_record",
                                  "mid_run"])
def test_wal_disk_scenario_verifies(kill, tmp_path, monkeypatch):
    monkeypatch.setenv("TMPDIR", str(tmp_path))
    [scenario] = build_matrix(["heat"], ["testing"], [kill],
                              storage="wal-disk")
    assert scenario.label.endswith("@wal-disk")
    row = _measure_scenario(scenario)
    assert row.get("error") is None
    assert row["verified_clean"] and row["verified_recovery"]
    assert row["fired"]
    assert row["restarts"] >= 1


def test_wal_campaign_slice_through_harness():
    scenarios = build_matrix(["ring", "EP"], ["testing"],
                             ["mid_group_commit", "epoch_boundary"],
                             storage="wal")
    report = run_campaign(scenarios, parallel=False)
    assert report.ok, report.summary()["failed"]
    assert len(report.rows) == 4


def test_kill_at_deeper_group_commit():
    """Line 2's group commit (line 1 durable underneath) — the campaign
    timing uses line 1; this pins the restore-then-fall-back case."""
    row = _run_one(Scenario(
        app="heat", platform="testing", kill="mid_group_commit",
        params=CAMPAIGN_PARAMS["heat"],
        kills=({"rank": 1, "at_group_commit": 2},),
        interval_frac=0.15, storage="wal"))
    assert row["passed"], row["failure"]
    assert row["restarts"] >= 1
    # line 1 had committed durably before the kill, so the restart
    # restored it rather than starting over
    assert row["restore_seconds"] > 0.0


# ---------------------------------------------------------------------------
# Fallback semantics: the torn group commit loses exactly the torn line
# ---------------------------------------------------------------------------

def test_torn_group_commit_falls_back_to_prior_line():
    """Kill inside line 2's group commit and pin where recovery lands:
    the staged line-2 tail is torn away, line 1 restores bitwise."""
    app = APPS["heat"]
    params = CAMPAIGN_PARAMS["heat"]

    def wrapped(ctx):
        return app(ctx, **params)

    golden = run_original(wrapped, 4)
    golden.raise_errors()
    store = WalStore(InMemoryStorage())
    res = run_fault_tolerant(
        wrapped, 4, storage=store,
        config=C3Config(checkpoint_interval=golden.virtual_time * 0.15),
        fault_plan=FaultPlan([FaultSpec(rank=2, at_group_commit=2)]),
        wall_timeout=120)
    assert res.returns == golden.returns
    assert res.restarts == 1
    # the torn tail was truncated at replay and re-execution recommitted
    # past it; the store's replay counter proves the recovery path ran
    assert store.replays >= 1
    assert store.last_committed_global(4, validate=True) >= 2


def test_wal_disk_recovery_gc_leaves_live_lines_replayable(tmp_path):
    """After a kill/restart on real files, the WAL holds <= 2 lines per
    rank and a cold reopen replays to a committed, validated index."""
    roots = iter(range(1000))

    def factory():
        return WalStore(DiskStorage(str(tmp_path / f"wal{next(roots)}")))

    record = measure_recovery(
        "heat", 4, MACHINES["testing"],
        dict(local_n=16, niter=10), [{"rank": 1, "frac": 0.55}],
        storage_factory=factory)
    assert record["verified"]
    assert record["checkpoints_committed"] >= 2
    assert record["lines_retained"] <= 2
    # the faulty-run store is the second one the factory produced;
    # reopen its backend cold — as an operator would — and replay
    reopened = as_store(DiskStorage(str(tmp_path / "wal1")), nprocs=4)
    assert isinstance(reopened, WalStore)
    assert (reopened.last_committed_global(4, validate=True)
            == record["checkpoints_committed"])
