"""Campaign smoke slice against a tmpdir DiskStorage.

The campaign matrix normally exercises only InMemoryStorage; these
scenarios run the same golden/clean/kill/restart/verify pipeline against
real files — real atomic renames on the hot path, the torn-line
rejection path, and GC deletions — covering the storage stack the
examples and operators actually use.
"""

import pytest

from repro.harness.campaign import (
    Scenario, _measure_scenario, build_matrix, run_campaign,
)
from repro.storage import DiskStorage, committed_map, last_committed_global
from repro.harness.runner import measure_recovery
from repro.mpi.timemodel import MACHINES


@pytest.mark.parametrize("kill", ["mid_run", "mid_drain", "mid_commit"])
def test_disk_campaign_scenario_verifies(kill, tmp_path, monkeypatch):
    monkeypatch.setenv("TMPDIR", str(tmp_path))
    [scenario] = build_matrix(["heat"], ["testing"], [kill],
                              storage="disk")
    assert scenario.label.endswith("@disk")
    row = _measure_scenario(scenario)
    assert row.get("error") is None
    assert row["verified_clean"] and row["verified_recovery"]
    assert row["fired"]
    assert row["restarts"] >= 1


def test_disk_campaign_slice_through_harness(tmp_path, monkeypatch):
    monkeypatch.setenv("TMPDIR", str(tmp_path))
    scenarios = build_matrix(["CG", "ring"], ["testing"],
                             ["mid_drain", "early"], storage="disk")
    report = run_campaign(scenarios, parallel=False)
    assert report.ok, report.summary()["failed"]
    assert len(report.rows) == 4


def test_disk_recovery_gc_leaves_only_live_lines(tmp_path):
    """After a kill/restart sequence on real files, storage holds exactly
    the live lines (<= 2 per rank), every one fully committed — GC
    removed the superseded files from disk."""
    roots = iter(range(1000))
    factory = lambda: DiskStorage(  # noqa: E731
        str(tmp_path / f"store{next(roots)}"))
    record = measure_recovery(
        "heat", 4, MACHINES["testing"],
        dict(local_n=16, niter=10), [{"rank": 1, "frac": 0.55}],
        storage_factory=factory)
    assert record["verified"]
    assert record["checkpoints_committed"] >= 2
    assert record["lines_retained"] <= 2
    # the faulty-run store is the second one the factory produced
    store = DiskStorage(str(tmp_path / "store1"))
    cmap = committed_map(store)
    last = last_committed_global(store, 4, validate=True)
    assert last == record["checkpoints_committed"]
    for rank in range(4):
        assert len(cmap[rank]) <= 2
        assert cmap[rank][-1] == last
    # nothing on disk but the retained lines' files (no temp debris)
    assert not [p for p in store.list() if p.endswith(".tmp")]


def test_unknown_storage_kind_becomes_error_record():
    row = _measure_scenario(Scenario(app="heat", platform="testing",
                                     kill="mid_run", storage="floppy"))
    assert "unknown storage backend" in row["error"]
