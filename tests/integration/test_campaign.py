"""Recovery-campaign integration: structural kills ride the campaign API.

The satellite coverage the recovery matrix lacks: a rank killed *inside*
a collective (peers stuck mid-exchange) and a rank killed *between*
epochs (``chkpt_StartCheckpoint`` advanced the epoch, nothing of the new
line committed) must both restart to the exact failure-free answer —
driven through the same :mod:`repro.harness.campaign` scenario pipeline
the CLI and CI run.
"""

import pytest

from repro.apps import APPS
from repro.core import (
    C3Config, ProtocolError, resume_from_manifest, run_c3, run_original,
)
from repro.harness.campaign import (
    APP_KERNELS, CAMPAIGN_PARAMS, Scenario, build_matrix, render_campaign,
    run_campaign, smoke_matrix,
)
from repro.mpi import FaultPlan, FaultSpec
from repro.storage import InMemoryStorage


def _run_one(scenario: Scenario):
    report = run_campaign([scenario], parallel=False)
    assert len(report.rows) == 1
    return report.rows[0]


@pytest.mark.parametrize("app,kill", [
    ("CG", "mid_collective"),   # kill inside a collective exchange
    ("SMG2000", "mid_collective"),
    ("CG", "epoch_boundary"),   # kill between epochs
    ("LU", "epoch_boundary"),
])
def test_structural_kills_recover_exactly(app, kill):
    (scenario,) = build_matrix([app], ["testing"], [kill])
    row = _run_one(scenario)
    assert row["passed"], row["failure"]
    assert row["fired"], "the scheduled kill must actually fire"
    assert row["restarts"] >= 1
    assert row["verified_recovery"] and row["verified_clean"]


def test_kill_at_deeper_epoch_boundary():
    """Epoch 2's boundary (a committed line exists, peers have announced)
    — the campaign-wide timing uses epoch 1, this pins the deeper case."""
    row = _run_one(Scenario(
        app="CG", platform="testing", kill="epoch_boundary",
        params=CAMPAIGN_PARAMS["CG"], kills=({"rank": 1, "at_epoch": 2},),
        interval_frac=0.15))
    assert row["passed"], row["failure"]
    assert row["restarts"] >= 1
    # epoch 2 was reached, so at least line 1 had committed before the
    # kill and the restart restored it rather than starting over
    assert row["restore_seconds"] > 0.0


def test_mid_collective_kill_leaves_peers_blocked_then_recovers():
    """The surviving ranks are inside the same collective when the victim
    dies; they must unwind via abort and the restart must verify."""
    (scenario,) = build_matrix(["MG"], ["testing"], ["mid_collective"])
    row = _run_one(scenario)
    assert row["passed"], row["failure"]
    assert any("collective" in f for f in row["fired"])


def test_smoke_matrix_covers_every_kernel():
    apps = {s.app for s in smoke_matrix()}
    assert apps == set(APP_KERNELS)
    # and at least the three core timing families appear
    kills = {s.kill for s in smoke_matrix()}
    assert {"mid_run", "epoch_boundary", "mid_collective"} <= kills


def test_vacuous_deterministic_kill_fails_the_scenario():
    """A deterministic kill that never fires must fail its scenario —
    a matrix whose kills silently miss is not a recovery test."""
    row = _run_one(Scenario(
        app="ring", platform="testing", kill="epoch_boundary",
        params=CAMPAIGN_PARAMS["ring"],
        kills=({"rank": 1, "at_epoch": 99},)))
    assert not row["passed"]
    assert "never fired" in row["failure"]
    assert row["verified_recovery"]  # the run itself completed fine


def test_render_campaign_mentions_verdicts():
    (scenario,) = build_matrix(["heat"], ["testing"], ["mid_run"])
    text = render_campaign([_run_one(scenario)])
    assert "heat/testing/mid_run" in text
    assert "PASS" in text


def test_resume_from_manifest_requires_a_line():
    app = APPS["ring"]
    with pytest.raises(ProtocolError, match="no recovery line"):
        resume_from_manifest(app, 3, InMemoryStorage())


def test_resume_from_manifest_restarts_a_failed_job():
    """The out-of-loop operator entry point: run until a kill, then hand
    only the storage backend to resume_from_manifest."""
    app = APPS["ring"]
    golden = run_original(app, 3)
    golden.raise_errors()
    T = golden.virtual_time

    storage = InMemoryStorage()
    config = C3Config(checkpoint_interval=T * 0.2)
    failed, _ = run_c3(app, 3, storage=storage, config=config,
                       fault_plan=FaultPlan([FaultSpec(rank=1,
                                                       at_time=T * 0.6)]))
    assert failed.failure is not None

    resumed, stats = resume_from_manifest(app, 3, storage, config=config)
    resumed.raise_errors()
    assert resumed.failure is None
    assert resumed.returns == golden.returns
    assert max(s.restore_seconds for s in stats if s) > 0.0
