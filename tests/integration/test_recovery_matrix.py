"""End-to-end recovery invariants across a matrix of failure points.

The central property of the system (the paper's correctness claim): for a
deterministic application, a run that fails at ANY point and recovers
from the last committed line produces exactly the failure-free answer.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import APPS
from repro.core import C3Config, run_fault_tolerant, run_original
from repro.mpi import FaultPlan, FaultSpec
from repro.mpi.ops import SUM
from repro.storage import InMemoryStorage


def dense_app(ctx):
    """A deliberately chatty app: p2p + collectives + nonblocking, with
    staggered progress so recovery lines cut through live traffic."""
    comm = ctx.comm
    r, s = ctx.rank, ctx.size
    if ctx.first_time("setup"):
        ctx.state.x = np.arange(6.0) * (r + 1)
        ctx.state.inbox = np.zeros(6)
        ctx.state.acc = 0.0
        ctx.done("setup")
    for it in ctx.range("i", 15):
        ctx.checkpoint()
        ctx.compute(1e-4 * (1 + (r * 7 + it) % 3))
        req = comm.Irecv(ctx.state.inbox, source=(r - 1) % s, tag=1)
        comm.Send(ctx.state.x, dest=(r + 1) % s, tag=1)
        comm.Wait(req)
        ctx.state.x = ctx.state.inbox * 0.9 + it
        out = np.zeros(1)
        comm.Allreduce(np.array([float(ctx.state.x.sum())]), out, SUM)
        ctx.state.acc += float(out[0])
    return round(ctx.state.acc, 6)


REF = {}


def reference(nprocs):
    if nprocs not in REF:
        result = run_original(dense_app, nprocs)
        result.raise_errors()
        REF[nprocs] = (result.returns, result.virtual_time)
    return REF[nprocs]


@pytest.mark.parametrize("tenth", range(1, 10))
def test_failure_at_every_tenth(tenth):
    """Kill a rank at each 10% mark of the run; always recover exactly."""
    returns, T = reference(3)
    res = run_fault_tolerant(
        dense_app, 3, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=T * 0.13),
        fault_plan=FaultPlan([FaultSpec(rank=tenth % 3,
                                        at_time=T * tenth / 10)]),
        wall_timeout=120)
    assert res.returns == returns


@settings(max_examples=12, deadline=None)
@given(rank=st.integers(0, 2), frac=st.floats(0.05, 0.95),
       interval_frac=st.floats(0.08, 0.4))
def test_recovery_invariant_property(rank, frac, interval_frac):
    """Property: any (failing rank, failure time, checkpoint cadence)
    yields the failure-free answer."""
    returns, T = reference(3)
    res = run_fault_tolerant(
        dense_app, 3, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=T * interval_frac),
        fault_plan=FaultPlan([FaultSpec(rank=rank, at_time=T * frac)]),
        wall_timeout=120)
    assert res.returns == returns
    assert res.restarts == 1


def test_recovery_from_disk_storage(tmp_path):
    """Checkpoints on real files survive 'the machine' (process state)."""
    from repro.storage import DiskStorage
    returns, T = reference(3)
    storage = DiskStorage(str(tmp_path / "stable"))
    res = run_fault_tolerant(
        dense_app, 3, storage=storage,
        config=C3Config(checkpoint_interval=T * 0.15),
        fault_plan=FaultPlan([FaultSpec(rank=2, at_time=T * 0.6)]))
    assert res.returns == returns
    assert len(storage.list("ckpt/")) > 0


def test_portable_checkpoint_restores():
    """The grid-environment extension: portable-format checkpoints restore
    exactly like binary ones."""
    returns, T = reference(3)
    res = run_fault_tolerant(
        dense_app, 3, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=T * 0.15, portable=True),
        fault_plan=FaultPlan([FaultSpec(rank=0, at_time=T * 0.5)]))
    assert res.returns == returns


def test_full_codec_recovery():
    """The piggyback ablation codec must be functionally identical."""
    returns, T = reference(3)
    res = run_fault_tolerant(
        dense_app, 3, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=T * 0.15, codec="full"),
        fault_plan=FaultPlan([FaultSpec(rank=1, at_time=T * 0.5)]))
    assert res.returns == returns


def test_distinguished_initiator_recovery():
    """The earlier protocol's initiation (ablation) still recovers."""
    returns, T = reference(3)
    res = run_fault_tolerant(
        dense_app, 3, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=T * 0.15,
                        distinguished_initiator=True),
        fault_plan=FaultPlan([FaultSpec(rank=2, at_time=T * 0.55)]))
    assert res.returns == returns


def test_three_failures_in_sequence():
    returns, T = reference(3)
    plan = FaultPlan([
        FaultSpec(rank=0, at_time=T * 0.3),
        FaultSpec(rank=1, at_time=T * 0.55),
        FaultSpec(rank=2, at_time=T * 0.8),
    ])
    res = run_fault_tolerant(
        dense_app, 3, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=T * 0.12), fault_plan=plan,
        wall_timeout=180)
    # virtual clocks restart at zero on recovery, so late triggers may
    # never be reached again; at least the first two failures must fire
    assert res.restarts >= 2
    assert res.returns == returns


def test_probabilistic_faults_eventually_finish():
    """Seeded probabilistic fail-stop faults: the restart loop converges
    because fired specs never re-fire."""
    returns, T = reference(3)
    plan = FaultPlan([FaultSpec(rank=r, probability=0.001) for r in range(3)],
                     seed=7)
    res = run_fault_tolerant(
        dense_app, 3, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=T * 0.2), fault_plan=plan,
        max_restarts=10, wall_timeout=180)
    assert res.returns == returns
