"""Larger-rank sanity: protocol stays correct as the job widens.

The paper's scalability claim is about overhead, tested in the benches;
these tests verify functional correctness at the widest rank counts the
thread engine runs comfortably.
"""

import numpy as np
import pytest

from repro.apps import APPS
from repro.core import C3Config, run_c3, run_fault_tolerant, run_original
from repro.mpi import FaultPlan, FaultSpec, run_job
from repro.storage import InMemoryStorage


@pytest.mark.parametrize("nprocs", [16, 24])
def test_ring_recovery_wide(nprocs):
    app = APPS["ring"]
    ref = run_original(app, nprocs, wall_timeout=120)
    ref.raise_errors()
    T = ref.virtual_time
    res = run_fault_tolerant(
        app, nprocs, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=T * 0.2),
        fault_plan=FaultPlan([FaultSpec(rank=nprocs // 2, at_time=T * 0.6)]),
        wall_timeout=180)
    assert res.returns == ref.returns


def test_checkpoint_commits_at_16_ranks():
    app = APPS["CG"]
    storage = InMemoryStorage()
    result, stats = run_c3(app, 16, storage=storage,
                           config=C3Config(checkpoint_interval=2e-4),
                           wall_timeout=180)
    result.raise_errors()
    assert min(s.checkpoints_committed for s in stats if s) >= 1
    # all 16 ranks committed the same set of lines
    from repro.storage import last_committed_global
    assert last_committed_global(storage, 16) >= 1


def test_ring_exchange_smoke_64_ranks():
    """64-rank smoke: ring shifts + a wildcard exchange phase stay correct
    under the signature-indexed mailbox at a width the timeout-polling
    engine could not reach practically."""
    nprocs = 64

    def main(mpi):
        comm = mpi.COMM_WORLD
        rank, size = mpi.rank, mpi.size
        right, left = (rank + 1) % size, (rank - 1) % size
        token = np.array([float(rank)])
        recv = np.zeros(1)
        total = 0.0
        # three ring shifts on the exact-signature fast path
        for step in range(3):
            comm.Send(token, dest=right, tag=step)
            comm.Recv(recv, source=left, tag=step)
            total += float(recv[0])
            token = recv.copy()
        # wildcard exchange phase: everyone reports to rank 0
        if rank == 0:
            inbox = np.zeros(1)
            seen = set()
            for _ in range(size - 1):
                st = comm.Recv(inbox, source=mpi.ANY_SOURCE, tag=99)
                seen.add(st.source)
            assert seen == set(range(1, size))
        else:
            comm.Send(np.array([float(rank)]), dest=0, tag=99)
        out = np.zeros(1)
        comm.Allreduce(np.array([total]), out, mpi.SUM)
        return float(out[0])

    result = run_job(nprocs, main, wall_timeout=120)
    result.raise_errors()
    assert result.failure is None
    assert len(set(result.returns)) == 1  # allreduce agreed everywhere


def test_control_messages_scale_linearly_per_checkpoint():
    """Each checkpoint costs each rank exactly (p-1) Checkpoint-Initiated
    sends (the any-process protocol has no extra coordination rounds;
    in particular the GC floor is read from the storage manifest, not
    broadcast)."""
    app = APPS["ring"]
    for nprocs in (4, 8):
        storage = InMemoryStorage()
        result, stats = run_c3(
            app, nprocs, storage=storage,
            config=C3Config(checkpoint_interval=1e-4, max_checkpoints=1),
            wall_timeout=120)
        result.raise_errors()
        st = [s for s in stats if s]
        committed = min(s.checkpoints_committed for s in st)
        assert committed == 1
        for s in st:
            # announcements sent + announcements received
            assert s.control_msgs == 2 * (nprocs - 1)
