"""Larger-rank sanity: protocol stays correct as the job widens.

The paper's scalability claim is about overhead, tested in the benches;
these tests verify functional correctness at the widest rank counts the
thread engine runs comfortably.
"""

import numpy as np
import pytest

from repro.apps import APPS
from repro.core import C3Config, run_c3, run_fault_tolerant, run_original
from repro.mpi import FaultPlan, FaultSpec
from repro.storage import InMemoryStorage


@pytest.mark.parametrize("nprocs", [16, 24])
def test_ring_recovery_wide(nprocs):
    app = APPS["ring"]
    ref = run_original(app, nprocs, wall_timeout=120)
    ref.raise_errors()
    T = ref.virtual_time
    res = run_fault_tolerant(
        app, nprocs, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=T * 0.2),
        fault_plan=FaultPlan([FaultSpec(rank=nprocs // 2, at_time=T * 0.6)]),
        wall_timeout=180)
    assert res.returns == ref.returns


def test_checkpoint_commits_at_16_ranks():
    app = APPS["CG"]
    storage = InMemoryStorage()
    result, stats = run_c3(app, 16, storage=storage,
                           config=C3Config(checkpoint_interval=2e-4),
                           wall_timeout=180)
    result.raise_errors()
    assert min(s.checkpoints_committed for s in stats if s) >= 1
    # all 16 ranks committed the same set of lines
    from repro.storage import last_committed_global
    assert last_committed_global(storage, 16) >= 1


def test_control_messages_scale_linearly_per_checkpoint():
    """Each checkpoint costs each rank exactly (p-1) Checkpoint-Initiated
    sends (the any-process protocol has no extra coordination rounds)."""
    app = APPS["ring"]
    for nprocs in (4, 8):
        storage = InMemoryStorage()
        result, stats = run_c3(
            app, nprocs, storage=storage,
            config=C3Config(checkpoint_interval=1e-4, max_checkpoints=1),
            wall_timeout=120)
        result.raise_errors()
        st = [s for s in stats if s]
        committed = min(s.checkpoints_committed for s in st)
        assert committed == 1
        for s in st:
            # announcements sent + announcements received
            assert s.control_msgs == 2 * (nprocs - 1)
