"""Every shipped example must run clean (they assert their own claims)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

EXAMPLES = [
    "quickstart.py",
    "heat_failure.py",
    "cg_solver.py",
    "wildcard_replay.py",
    "precompiled_app.py",
    "drain_daemon.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    path = os.path.join(EXAMPLES_DIR, script)
    proc = subprocess.run([sys.executable, path], capture_output=True,
                          text=True, timeout=240)
    assert proc.returncode == 0, (
        f"{script} failed:\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert "OK" in proc.stdout or "matches" in proc.stdout or \
        "consistent" in proc.stdout
