"""Property-based protocol fuzzing.

Hypothesis generates random communication programs (ring sends, wildcard
receives, collectives, nonblocking pairs, compute stagger) plus a random
failure point and checkpoint cadence; every generated case must satisfy
the recovery invariant: the fault-tolerant run returns the failure-free
answer.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import C3Config, run_fault_tolerant, run_original
from repro.mpi import FaultPlan, FaultSpec
from repro.mpi.ops import SUM
from repro.storage import InMemoryStorage

#: per-iteration operations the fuzzer chooses from
OPS = ("ring", "allreduce", "bcast", "nonblocking", "barrier", "gather")


def make_app(program, stagger):
    """Build an app from a list of (op, param) pairs executed per iteration."""

    def app(ctx):
        comm = ctx.comm
        r, s = ctx.rank, ctx.size
        if ctx.first_time("setup"):
            ctx.state.x = np.arange(4.0) + r
            ctx.state.inbox = np.zeros(4)
            ctx.state.acc = 0.0
            ctx.done("setup")
        for it in ctx.range("i", len(program)):
            ctx.checkpoint()
            ctx.compute(1e-4 * (1 + (r * stagger) % 3))
            op = program[it]
            if op == "ring":
                comm.Send(ctx.state.x, dest=(r + 1) % s, tag=1)
                buf = np.zeros(4)
                comm.Recv(buf, source=(r - 1) % s, tag=1)
                ctx.state.x = buf * 0.95 + it
            elif op == "allreduce":
                out = np.zeros(1)
                comm.Allreduce(np.array([float(ctx.state.x.sum())]), out, SUM)
                ctx.state.acc += float(out[0])
            elif op == "bcast":
                buf = ctx.state.x.copy() if r == it % s else np.zeros(4)
                comm.Bcast(buf, root=it % s)
                ctx.state.acc += float(buf.sum())
            elif op == "nonblocking":
                req = comm.Irecv(ctx.state.inbox, source=(r - 1) % s, tag=2)
                comm.Send(ctx.state.x + 1, dest=(r + 1) % s, tag=2)
                comm.Wait(req)
                ctx.state.x = ctx.state.inbox.copy()
            elif op == "barrier":
                comm.Barrier()
                ctx.state.acc += 1.0
            elif op == "gather":
                out = np.zeros((s, 4)) if r == 0 else None
                comm.Gather(ctx.state.x, out, root=0)
                if r == 0:
                    ctx.state.acc += float(out.sum())
        return round(float(ctx.state.acc + ctx.state.x.sum()), 6)

    return app


@settings(max_examples=15, deadline=None)
@given(
    program=st.lists(st.sampled_from(OPS), min_size=4, max_size=10),
    stagger=st.integers(0, 5),
    fail_rank=st.integers(0, 2),
    fail_frac=st.floats(0.1, 0.9),
    interval_frac=st.floats(0.1, 0.5),
)
def test_random_program_recovers(program, stagger, fail_rank, fail_frac,
                                 interval_frac):
    app = make_app(tuple(program), stagger)
    ref = run_original(app, 3, wall_timeout=60)
    ref.raise_errors()
    T = ref.virtual_time
    res = run_fault_tolerant(
        app, 3, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=T * interval_frac),
        fault_plan=FaultPlan([FaultSpec(rank=fail_rank,
                                        at_time=T * fail_frac)]),
        wall_timeout=90)
    assert res.returns == ref.returns
