"""Harness plumbing: report rendering, runners, paper-data integrity."""

import pytest

import os

from repro.harness import paperdata, render_table
from repro.harness.parallel import Cell, CellError, default_workers, run_cells
from repro.harness.platforms import (
    LEMIEUX_CODES, RESTART_CODES, TABLE1_CODES, VELOCITY2_CODES,
)
from repro.harness.report import fmt
from repro.harness.runner import (
    c3_cell, measure_c3, measure_original, measure_restart, original_cell,
)
from repro.mpi.timemodel import TESTING


class TestReport:
    def test_fmt_none_is_unavailable_marker(self):
        assert fmt(None).strip() == "-*"

    def test_fmt_float(self):
        assert fmt(3.14159, decimals=2).strip() == "3.14"

    def test_render_table_shape(self):
        out = render_table("Title", ["A", "B"], [[1, 2.5], [None, "x"]])
        lines = out.splitlines()
        assert lines[0] == "Title"
        assert "A" in lines[2] and "B" in lines[2]
        assert "-*" in out
        assert "2.50" in out


class TestPaperData:
    def test_table1_has_both_platforms(self):
        assert set(paperdata.TABLE1) == {"solaris", "linux"}
        assert len(paperdata.TABLE1["solaris"]) == 8

    def test_table2_overheads_under_ten_percent(self):
        for code, rows in paperdata.TABLE2.items():
            for row in rows:
                if row[4] is not None:
                    assert row[4] < 10.0

    def test_table3_smg_anomaly_recorded(self):
        smg = [r[4] for r in paperdata.TABLE3["SMG2000"]]
        assert min(smg) > 40.0

    def test_tables_cover_same_codes(self):
        assert set(paperdata.TABLE2) == set(paperdata.TABLE4)
        assert set(paperdata.TABLE3) == set(paperdata.TABLE5)
        assert set(paperdata.TABLE6) == set(paperdata.TABLE7)


class TestScaleConfigs:
    def test_every_code_has_three_points(self):
        for cfg in LEMIEUX_CODES + VELOCITY2_CODES:
            assert len(cfg.points) == 3
            procs = [p.sim_procs for p in cfg.points]
            assert procs == sorted(procs)

    def test_scale_points_match_paper_rows(self):
        for cfg in LEMIEUX_CODES:
            paper_rows = paperdata.TABLE2[cfg.label]
            assert [p.paper_procs for p in cfg.points] == \
                [r[0] for r in paper_rows]

    def test_table1_codes_cover_table1(self):
        labels = {label for _, label, _, _, _ in TABLE1_CODES}
        assert labels == set(paperdata.TABLE1["solaris"])


class TestRunners:
    def test_measure_original_and_c3(self):
        params = dict(payload=8, niter=6, work=1e-5)
        orig = measure_original("ring", 2, TESTING, params)
        assert orig.virtual_seconds > 0
        c3 = measure_c3("ring", 2, TESTING, params, checkpoints=0)
        assert c3.virtual_seconds >= orig.virtual_seconds

    def test_measure_c3_with_checkpoint(self):
        params = dict(payload=8, niter=10, work=1e-4)
        base = measure_original("ring", 2, TESTING, params)
        res = measure_c3("ring", 2, TESTING, params, checkpoints=1,
                         reference_time=base.virtual_seconds)
        assert res.checkpoints_committed >= 1
        assert res.checkpoint_bytes > 0
        assert res.last_commit_time > 0

    def test_measure_restart(self):
        out = measure_restart("ring", TESTING,
                              dict(payload=8, niter=12, work=2e-4))
        assert out["original_seconds"] > 0
        assert out["restart_run_seconds"] > 0
        assert out["restore_seconds"] > 0


class TestParallelHarness:
    PARAMS = dict(payload=8, niter=4, work=1e-5)

    def _cells(self):
        return [original_cell("ring", 2, TESTING, self.PARAMS),
                c3_cell("ring", 2, TESTING, self.PARAMS, checkpoints=0)]

    def test_inline_matches_direct_measurement(self):
        inline = run_cells(self._cells(), parallel=False)
        direct = measure_original("ring", 2, TESTING, self.PARAMS)
        assert inline[0].virtual_seconds == direct.virtual_seconds
        assert inline[1].virtual_seconds >= inline[0].virtual_seconds

    def test_pool_results_match_inline_in_order(self):
        cells = self._cells() + self._cells()
        inline = run_cells(cells, parallel=False)
        pooled = run_cells(cells, parallel=True, max_workers=2)
        assert [r.virtual_seconds for r in pooled] == \
            [r.virtual_seconds for r in inline]

    def test_cell_failure_is_attributed(self):
        bad = Cell(measure_original,
                   dict(app_name="no-such-app", nprocs=1, machine=TESTING,
                        params={}), label="bad-cell")
        with pytest.raises(RuntimeError, match="bad-cell"):
            run_cells([bad], parallel=False)

    def test_worker_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "3")
        assert default_workers() == 3


def _kill_worker() -> None:
    """Simulate a hard worker crash (no exception, no cleanup)."""
    os._exit(13)


def _well_behaved(value: int) -> int:
    return value * 2


class TestWorkerDeath:
    """A crashed pool worker must surface as a failed cell, not take
    down the study (ISSUE 9 satellite: kill-the-worker regression)."""

    def test_killer_cell_reports_cell_error(self):
        cells = [Cell(_well_behaved, dict(value=1), label="ok-0"),
                 Cell(_kill_worker, {}, label="killer"),
                 Cell(_well_behaved, dict(value=3), label="ok-1")]
        results = run_cells(cells, parallel=True, max_workers=2)
        assert results[0] == 2
        assert results[2] == 6
        err = results[1]
        assert isinstance(err, CellError)
        assert err.label == "killer"
        assert "died" in err.error and "killer" in err.error
        assert "BrokenProcessPool" in err.traceback

    def test_on_result_streams_past_the_crash(self):
        cells = [Cell(_kill_worker, {}, label="killer")] + \
            [Cell(_well_behaved, dict(value=i), label=f"ok-{i}")
             for i in range(3)]
        seen = []
        results = run_cells(cells, parallel=True, max_workers=2,
                            on_result=lambda i, c, r: seen.append((i, c.label)))
        assert seen == [(0, "killer"), (1, "ok-0"), (2, "ok-1"), (3, "ok-2")]
        assert isinstance(results[0], CellError)
        assert results[1:] == [0, 2, 4]

    def test_pool_recovers_for_next_wave(self):
        run_cells([Cell(_kill_worker, {}, label="killer"),
                   Cell(_well_behaved, dict(value=1), label="ok")],
                  parallel=True, max_workers=2)
        clean = run_cells([Cell(_well_behaved, dict(value=v)) for v in (1, 2)],
                          parallel=True, max_workers=2)
        assert clean == [2, 4]
