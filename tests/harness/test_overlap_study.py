"""Overlapped write-back study driver and its CI gates."""

import pytest

from repro.harness.overlap import (
    OVERLAP_KERNELS, _judge_fault, _judge_overhead, fault_rows,
    overhead_rows, render_faults, render_overlap,
)


def test_overhead_gate_passes_on_one_cell():
    rows = overhead_rows(platforms=["lemieux"], kernels=["heat"])
    assert len(rows) == 1
    r = rows[0]
    assert r["passed"], r["failure"]
    # the headline: overlap collapses toward configuration #2
    assert r["overlap_cost_s"] < r["inline_cost_s"]
    assert r["committed_overlap"] >= 1
    out = render_overlap(rows)
    assert "lemieux" in out and "PASS" in out


def test_fault_gate_passes_on_one_platform():
    rows = fault_rows(platforms=["cmi"])
    assert {r["kill"] for r in rows} == {"mid_drain", "mid_commit"}
    for r in rows:
        assert r["passed"], r["failure"]
        assert r["restored_version"] == 1      # fell back past the torn line
        assert r["lines_retained"] <= 2
    out = render_faults(rows)
    assert "cmi/mid_drain" in out


def test_overhead_judge_rejects_inversion():
    row = dict(committed_inline=1, committed_overlap=1,
               overlap_cost_s=2.0, inline_cost_s=1.0)
    assert "not strictly below" in _judge_overhead(row)
    row.update(overlap_cost_s=0.5)
    assert _judge_overhead(row) is None
    row.update(committed_overlap=0)
    assert "vacuous" in _judge_overhead(row)


def test_fault_judge_rejects_gc_leak():
    row = dict(fired=["rank 1: in drain of line 2"], verified_recovery=True,
               verified_clean=True, restored_version=1, lines_retained=3)
    assert "GC left" in _judge_fault(row)
    row.update(lines_retained=2)
    assert _judge_fault(row) is None
    # a recovery that did not fall back to the line before the torn one
    # is a gate failure even when results match bitwise
    row.update(restored_version=2)
    assert "falling back" in _judge_fault(row)
    row.update(restored_version=None)
    assert "falling back" in _judge_fault(row)
    row.update(restored_version=1, fired=[])
    assert "vacuous" in _judge_fault(row)


def test_kernel_params_are_steady_state_sized():
    # interval_frac * golden must dwarf the platform drain latency; pin
    # the study kernels to stay in that regime (goldens of >= 10s of ms)
    assert set(OVERLAP_KERNELS) == {"heat", "CG", "SMG2000"}
