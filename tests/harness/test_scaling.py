"""Scaling study driver: sweep cells, flatness checking, paper-scale
platform points, and campaign scenarios pinned to an engine backend."""

import numpy as np
import pytest

from repro.harness.campaign import Scenario, build_matrix, run_campaign
from repro.harness.platforms import (
    LEMIEUX_CODES, PLATFORMS, PlatformConfig, ScalePoint,
)
from repro.harness.scaling import (
    SCALING_APPS, check_flatness, measure_scaling_point, render_scaling,
    scaling_rows,
)


class TestScalePoints:
    def test_sim_and_paper_fidelities(self):
        pt = LEMIEUX_CODES[0].points[0]
        assert pt.procs("sim") == pt.sim_procs
        assert pt.procs("paper") == pt.paper_procs
        assert pt.paper_procs > pt.sim_procs
        # weak scaling: per-rank parameters carry over unchanged
        assert pt.params_for("paper") == pt.params_for("sim")
        # fresh dicts, not aliases into the frozen config
        assert pt.params_for("sim") is not pt.params

    def test_explicit_paper_params_win(self):
        pt = ScalePoint(64, 16, 4, dict(n=8), paper_params=dict(n=2))
        assert pt.params_for("sim") == dict(n=8)
        assert pt.params_for("paper") == dict(n=2)

    def test_unknown_scale_rejected(self):
        pt = LEMIEUX_CODES[0].points[0]
        with pytest.raises(ValueError, match="unknown scale"):
            pt.procs("mega")

    def test_platform_registry_scale_points(self):
        lem = PLATFORMS["lemieux"]
        assert isinstance(lem, PlatformConfig)
        rows = list(lem.scale_points("paper"))
        assert rows
        # Tables 2/4 top out at the paper's 1024-process Lemieux runs
        assert max(nprocs for _c, _p, nprocs, _params, _m in rows) == 1024
        for _cfg, pt, nprocs, params, machine in rows:
            assert nprocs == pt.paper_procs
            assert machine.name == "lemieux"

    def test_velocity2_hpl_runs_on_cmi(self):
        v2 = PLATFORMS["velocity2"]
        machines = {cfg.app_name: m.name
                    for cfg, _p, _n, _par, m in v2.scale_points()}
        assert machines["HPL"] == "cmi"
        assert machines["CG"] == "velocity2"


class TestScalingSweep:
    def test_measure_scaling_point_record(self):
        row = measure_scaling_point("ring", 8, "testing",
                                    dict(payload=8, niter=3, work=1e-3))
        assert row["nprocs"] == 8
        assert row["engine"] == "cooperative"
        assert row["c3_seconds"] > row["original_seconds"] > 0
        assert isinstance(row["overhead_pct"], float)

    def test_small_sweep_rows_and_render(self):
        rows = scaling_rows(ranks=(4, 8), apps={"ring": SCALING_APPS["ring"]},
                            platforms=("testing",), parallel=False)
        assert len(rows) == 2
        assert sorted(r["nprocs"] for r in rows) == [4, 8]
        text = render_scaling(rows)
        assert "Ovh %" in text and "testing" in text

    def test_sweep_respects_engine_choice(self):
        rows = scaling_rows(ranks=(4,), apps={"ring": SCALING_APPS["ring"]},
                            platforms=("testing",), engine="threads",
                            parallel=False)
        assert rows[0]["engine"] == "threads"


class TestFlatnessCheck:
    @staticmethod
    def _rows(series):
        return [{"platform": "p", "app": "a", "nprocs": n,
                 "overhead_pct": o} for n, o in series]

    def test_flat_series_passes(self):
        rows = self._rows([(16, 2.0), (32, 2.1), (64, 2.3), (256, 3.0)])
        assert check_flatness(rows, tolerance_pct=4.0) == []

    def test_runaway_series_fails(self):
        rows = self._rows([(16, 2.0), (32, 2.5), (256, 8.0)])
        violations = check_flatness(rows, tolerance_pct=4.0)
        assert len(violations) == 1
        assert "256 ranks" in violations[0]

    def test_high_overhead_fails_at_any_point(self):
        # flat but high: every point must stay under the cap
        rows = self._rows([(16, 2.0), (32, 12.0), (256, 6.0)])
        violations = check_flatness(rows, tolerance_pct=4.0)
        assert len(violations) == 1
        assert "outside" in violations[0]

    def test_single_point_series_skips_trend_but_keeps_cap(self):
        assert check_flatness(self._rows([(16, 5.0)])) == []
        assert len(check_flatness(self._rows([(16, 50.0)]))) == 1


class TestCampaignOnEngine:
    """Satellite: a campaign smoke cell runs on the new engine (and the
    escape hatch stays selectable)."""

    @pytest.mark.parametrize("engine", ["cooperative", "threads"])
    def test_ring_recovery_scenario(self, engine):
        scenarios = build_matrix(["ring"], ["testing"], ["mid_run"],
                                 nprocs=4, engine=engine)
        assert scenarios == [scenarios[0]]
        assert scenarios[0].engine == engine
        report = run_campaign(scenarios, parallel=False)
        assert report.ok, report.rows
        row = report.rows[0]
        assert row["engine"] == engine
        assert row["restarts"] >= 1
        assert row["verified_recovery"]
