"""Checkpoint-size study (Tables 1/4 over the instrumented kernels)."""

import json

import pytest

from repro.harness.sizes import (
    SIZES_PARAMS, SIZES_PLATFORMS, main, measure_kernel_sizes, render_sizes,
    table_sizes_rows,
)
from repro.harness.sizes import _judge


@pytest.fixture(scope="module")
def heat_row():
    return measure_kernel_sizes("heat+ccc", nprocs=2,
                                params=dict(local_n=2048, niter=6))


class TestMeasurement:
    def test_c3_strictly_below_condor(self, heat_row):
        """The Table-1 inequality, on both the accounting and the actual
        serialized payloads."""
        assert heat_row["passed"], heat_row["failure"]
        assert heat_row["c3_bytes"] < heat_row["condor_bytes"]
        assert (heat_row["c3_payload_bytes"]
                < heat_row["condor_payload_bytes"])
        assert 0.0 < heat_row["reduction_pct"] < 100.0

    def test_committed_bytes_come_from_the_protocol_path(self, heat_row):
        """The committed number is what the CheckpointWriter actually
        wrote for a recovery line — non-zero and of the same order as the
        serialized state payload."""
        assert heat_row["checkpoints_committed"] >= 1
        assert heat_row["c3_committed_bytes"] > 0
        assert (heat_row["c3_committed_bytes"]
                < heat_row["condor_payload_bytes"])

    def test_incremental_delta_smaller_than_full_for_heat(self, heat_row):
        """heat rewrites only its rod array; the dirty-page delta must be
        far below the full save (the Section-8 claim)."""
        delta = heat_row["incremental_delta_bytes"]
        assert delta is not None
        assert delta < heat_row["c3_committed_bytes"] * 0.5

    def test_ep_is_the_tiny_state_extreme(self):
        row = measure_kernel_sizes("EP+ccc", nprocs=2,
                                   params=dict(pairs_per_batch=512,
                                               batches=6))
        assert row["passed"], row["failure"]
        # EP's saved state is ten counters and two sums: the reduction is
        # by far the largest of the set (Table 1's EP row)
        assert row["reduction_pct"] > 60.0

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown app"):
            measure_kernel_sizes("nope+ccc")


class TestGate:
    def test_judge_passes_a_good_row(self, heat_row):
        assert _judge(heat_row) is None

    def test_judge_fails_inverted_sizes(self, heat_row):
        bad = dict(heat_row)
        bad["c3_bytes"] = bad["condor_bytes"]
        assert "not smaller" in _judge(bad)

    def test_judge_fails_vacuous_run(self, heat_row):
        bad = dict(heat_row)
        bad["checkpoints_committed"] = 0
        assert "vacuous" in _judge(bad)

    def test_judge_fails_oversized_delta(self, heat_row):
        bad = dict(heat_row)
        bad["incremental_delta_bytes"] = bad["c3_committed_bytes"] * 2
        assert "delta" in _judge(bad)


class TestDriver:
    def test_rows_cover_requested_kernels(self):
        rows = table_sizes_rows(kernels=["EP+ccc"], nprocs=2)
        assert [r["kernel"] for r in rows] == ["EP+ccc"]

    def test_sizes_params_cover_all_instrumented_kernels(self):
        from repro.apps.instrumented import INSTRUMENTED_APPS
        assert set(SIZES_PARAMS) == set(INSTRUMENTED_APPS)

    def test_render_mentions_gate_verdicts(self, heat_row):
        text = render_sizes([heat_row])
        assert "heat+ccc" in text and "PASS" in text

    def test_platforms_are_scaled_uniprocessors(self):
        assert set(SIZES_PLATFORMS) == {"solaris", "linux"}
        for machine in SIZES_PLATFORMS.values():
            assert machine.static_segment_bytes > 0


class TestCLI:
    def test_smoke_run_writes_json_and_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "BENCH_table1.json"
        rc = main(["--kernels", "EP+ccc,heat+ccc", "--nprocs", "2",
                   "--json", str(out), "-q"])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["summary"]["passed"] == 2
        assert {r["kernel"] for r in report["rows"]} == \
            {"EP+ccc", "heat+ccc"}
        assert "Table-1 inequality" in capsys.readouterr().out

    def test_unknown_kernel_exits_two(self, capsys):
        assert main(["--kernels", "bogus"]) == 2
        capsys.readouterr()
