"""Raw engine collectives: correctness over sizes, roots, and dtypes."""

import numpy as np
import pytest

from repro.mpi import SUM, PROD, MAX, MIN, MAXLOC, run_job
from repro.mpi.ops import Op

from repro.testutil import run

SIZES = [1, 2, 3, 4, 7, 8]


@pytest.mark.parametrize("nprocs", SIZES)
def test_barrier_completes(nprocs):
    def main(mpi):
        for _ in range(3):
            mpi.COMM_WORLD.Barrier()
        return True
    assert all(run(nprocs, main).returns)


@pytest.mark.parametrize("nprocs", SIZES)
@pytest.mark.parametrize("root", [0, -1])
def test_bcast(nprocs, root):
    r = (nprocs - 1) if root == -1 else root

    def main(mpi):
        comm = mpi.COMM_WORLD
        buf = (np.arange(5.0) + 100 if comm.rank == r else np.zeros(5))
        comm.Bcast(buf, root=r)
        return buf.tolist()

    for got in run(nprocs, main).returns:
        assert got == (np.arange(5.0) + 100).tolist()


@pytest.mark.parametrize("nprocs", SIZES)
@pytest.mark.parametrize("root", [0, -1])
def test_gather(nprocs, root):
    r = (nprocs - 1) if root == -1 else root

    def main(mpi):
        comm = mpi.COMM_WORLD
        recv = np.zeros((nprocs, 2)) if comm.rank == r else None
        comm.Gather(np.array([comm.rank, comm.rank + 0.5]), recv, root=r)
        return None if recv is None else recv.tolist()

    got = run(nprocs, main).returns[r]
    for i, row in enumerate(got):
        assert row == [i, i + 0.5]


@pytest.mark.parametrize("nprocs", SIZES)
@pytest.mark.parametrize("root", [0, -1])
def test_scatter(nprocs, root):
    r = (nprocs - 1) if root == -1 else root

    def main(mpi):
        comm = mpi.COMM_WORLD
        send = (np.arange(nprocs * 3, dtype=np.float64)
                if comm.rank == r else None)
        recv = np.zeros(3)
        comm.Scatter(send, recv, root=r)
        return recv.tolist()

    for rank, got in enumerate(run(nprocs, main).returns):
        assert got == [3 * rank, 3 * rank + 1, 3 * rank + 2]


@pytest.mark.parametrize("nprocs", SIZES)
def test_allgather(nprocs):
    def main(mpi):
        comm = mpi.COMM_WORLD
        recv = np.zeros((nprocs, 1))
        comm.Allgather(np.array([float(comm.rank)]), recv)
        return recv.reshape(-1).tolist()

    for got in run(nprocs, main).returns:
        assert got == list(range(nprocs))


@pytest.mark.parametrize("nprocs", SIZES)
def test_alltoall(nprocs):
    def main(mpi):
        comm = mpi.COMM_WORLD
        send = np.array([comm.rank * 100 + d for d in range(nprocs)],
                        dtype=np.float64)
        recv = np.zeros(nprocs)
        comm.Alltoall(send, recv)
        return recv.tolist()

    for rank, got in enumerate(run(nprocs, main).returns):
        assert got == [s * 100 + rank for s in range(nprocs)]


@pytest.mark.parametrize("nprocs", SIZES)
def test_alltoallv(nprocs):
    def main(mpi):
        comm = mpi.COMM_WORLD
        r = comm.rank
        sendcounts = [d + 1 for d in range(nprocs)]
        recvcounts = [r + 1] * nprocs
        send = np.concatenate([
            np.full(d + 1, r * 10 + d, dtype=np.float64)
            for d in range(nprocs)
        ])
        recv = np.zeros(sum(recvcounts))
        comm.Alltoallv(send, sendcounts, recv, recvcounts)
        return recv.tolist()

    for rank, got in enumerate(run(nprocs, main).returns):
        expected = []
        for s in range(nprocs):
            expected += [s * 10 + rank] * (rank + 1)
        assert got == expected


@pytest.mark.parametrize("op,expected", [
    (SUM, sum(range(5))), (PROD, 0.0), (MAX, 4.0), (MIN, 0.0),
])
def test_reduce_builtin_ops(op, expected):
    def main(mpi):
        comm = mpi.COMM_WORLD
        out = np.zeros(1)
        comm.Reduce(np.array([float(comm.rank)]), out, op, root=0)
        return out[0] if comm.rank == 0 else None

    assert run(5, main).returns[0] == expected


def test_allreduce_everyone_gets_result():
    def main(mpi):
        comm = mpi.COMM_WORLD
        out = np.zeros(2)
        comm.Allreduce(np.array([float(comm.rank), 1.0]), out, SUM)
        return out.tolist()

    for got in run(6, main).returns:
        assert got == [15.0, 6.0]


def test_scan_prefix_sums():
    def main(mpi):
        comm = mpi.COMM_WORLD
        out = np.zeros(1)
        comm.Scan(np.array([float(comm.rank + 1)]), out, SUM)
        return out[0]

    got = run(5, main).returns
    assert got == [1.0, 3.0, 6.0, 10.0, 15.0]


def test_non_commutative_op_rank_order():
    """Non-commutative ops must fold strictly in rank order."""
    def main(mpi):
        comm = mpi.COMM_WORLD
        # string-concatenation-like op on digit arrays: a*10 + b
        op = mpi.Op_create(lambda a, b: a * 10 + b, commute=False)
        out = np.zeros(1)
        comm.Reduce(np.array([float(comm.rank + 1)]), out, op, root=0)
        return out[0] if comm.rank == 0 else None

    assert run(4, main).returns[0] == 1234.0


def test_maxloc():
    def main(mpi):
        comm = mpi.COMM_WORLD
        val = [3.0, 7.0, 7.0, 1.0][comm.rank]
        pair = np.array([[val, float(comm.rank)]])
        out = np.zeros((1, 2))
        comm.Allreduce(pair, out, MAXLOC)
        return out[0].tolist()

    for got in run(4, main).returns:
        assert got == [7.0, 1.0]  # ties pick the lower rank


def test_collectives_on_subcommunicator():
    def main(mpi):
        comm = mpi.COMM_WORLD
        sub = comm.Split(color=comm.rank % 2, key=comm.rank)
        out = np.zeros(1)
        sub.Allreduce(np.array([float(comm.rank)]), out, SUM)
        return out[0]

    got = run(6, main).returns
    assert got == [6.0, 9.0, 6.0, 9.0, 6.0, 9.0]  # evens: 0+2+4, odds: 1+3+5
