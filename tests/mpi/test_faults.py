"""FaultPlan unit behavior."""

import pytest

from repro.mpi.errors import ProcessFailure
from repro.mpi.faults import FaultPlan, FaultSpec


def test_after_ops_threshold():
    plan = FaultPlan([FaultSpec(rank=0, after_ops=3)])
    plan.check(0, 2, 0.0)
    with pytest.raises(ProcessFailure) as exc:
        plan.check(0, 3, 1.5)
    assert exc.value.rank == 0
    assert exc.value.time == 1.5


def test_at_time_threshold():
    plan = FaultPlan([FaultSpec(rank=1, at_time=2.0)])
    plan.check(1, 100, 1.99)
    with pytest.raises(ProcessFailure):
        plan.check(1, 100, 2.0)


def test_only_target_rank_affected():
    plan = FaultPlan([FaultSpec(rank=2, after_ops=1)])
    for rank in (0, 1, 3):
        plan.check(rank, 1000, 1000.0)  # no raise


def test_fired_specs_do_not_refire():
    plan = FaultPlan([FaultSpec(rank=0, after_ops=1)])
    with pytest.raises(ProcessFailure):
        plan.check(0, 1, 0.0)
    plan.check(0, 99, 99.0)  # spent
    assert len(plan.fired) == 1


def test_probabilistic_is_seeded():
    def count_fires(seed):
        plan = FaultPlan([FaultSpec(rank=0, probability=0.2)], seed=seed)
        fires = 0
        for i in range(200):
            try:
                plan.check(0, i, float(i))
            except ProcessFailure:
                fires += 1
                plan.rearm()  # re-arm for counting
        return fires

    assert count_fires(1) == count_fires(1)
    assert 10 < count_fires(1) < 90


def test_add_and_bool():
    plan = FaultPlan.none()
    assert not plan
    plan.add(FaultSpec(rank=0, after_ops=5))
    assert plan


def test_reason_propagates():
    plan = FaultPlan([FaultSpec(rank=0, after_ops=1, reason="psu died")])
    with pytest.raises(ProcessFailure, match="psu died"):
        plan.check(0, 1, 0.0)


def test_multiple_specs_per_rank():
    plan = FaultPlan([FaultSpec(rank=0, after_ops=5),
                      FaultSpec(rank=0, at_time=1.0)])
    with pytest.raises(ProcessFailure):
        plan.check(0, 1, 1.0)   # at_time fires first
    with pytest.raises(ProcessFailure):
        plan.check(0, 5, 0.0)   # after_ops still armed


def test_spec_requires_a_trigger():
    with pytest.raises(ValueError):
        FaultSpec(rank=0)
    with pytest.raises(ValueError):
        FaultSpec(rank=0, in_collective=0)


def test_at_epoch_fires_only_on_note_epoch():
    plan = FaultPlan([FaultSpec(rank=1, at_epoch=2)])
    plan.check(1, 1000, 1000.0)      # per-op path ignores epoch specs
    plan.note_epoch(1, 1, 0.5)       # boundary below threshold
    plan.note_epoch(0, 2, 0.5)       # other rank's boundary
    with pytest.raises(ProcessFailure) as exc:
        plan.note_epoch(1, 2, 0.7)
    assert exc.value.time == 0.7
    plan.note_epoch(1, 3, 0.9)       # spent


def test_in_collective_fires_only_mid_collective():
    plan = FaultPlan([FaultSpec(rank=2, in_collective=3)])
    plan.check(2, 1000, 1000.0)             # per-op path ignores it
    plan.note_collective_op(2, 2, 0.1)      # second collective: below
    plan.note_collective_op(0, 3, 0.1)      # other rank
    with pytest.raises(ProcessFailure):
        plan.note_collective_op(2, 3, 0.2)
    plan.note_collective_op(2, 4, 0.3)      # spent


def test_in_drain_fires_only_while_draining():
    plan = FaultPlan([FaultSpec(rank=1, in_drain=2)])
    plan.check(1, 1000, 1000.0)      # per-op path ignores drain specs
    plan.note_drain(1, 1, 0.1)       # earlier line's drain: below
    plan.note_drain(0, 2, 0.1)       # other rank's drain
    with pytest.raises(ProcessFailure) as exc:
        plan.note_drain(1, 2, 0.2)
    assert exc.value.time == 0.2
    plan.note_drain(1, 3, 0.3)       # spent
    with pytest.raises(ValueError):
        FaultSpec(rank=0, in_drain=0)


def test_at_commit_fires_only_at_commit_instant():
    plan = FaultPlan([FaultSpec(rank=0, at_commit=2)])
    plan.check(0, 1000, 1000.0)      # per-op path ignores commit specs
    plan.note_commit(0, 1, 0.1)      # earlier line's commit: below
    plan.note_commit(1, 2, 0.1)      # other rank's commit
    with pytest.raises(ProcessFailure):
        plan.note_commit(0, 2, 0.2)
    plan.note_commit(0, 3, 0.3)      # spent
    with pytest.raises(ValueError):
        FaultSpec(rank=0, at_commit=0)


def test_staggered_schedule_and_describe():
    plan = FaultPlan.staggered([(0, 1.0), (1, 2.0)])
    assert len(plan.unfired()) == 2
    with pytest.raises(ProcessFailure):
        plan.check(0, 1, 1.0)
    assert len(plan.unfired()) == 1
    descriptions = [s.describe() for s in plan.all_specs()]
    assert any("rank 1" in d and "t=2" in d for d in descriptions)
    assert "epoch" in FaultSpec(rank=0, at_epoch=1).describe()
    assert "collective #4" in FaultSpec(rank=0, in_collective=4).describe()
    assert "drain of line 2" in FaultSpec(rank=0, in_drain=2).describe()
    assert "commit of line 3" in FaultSpec(rank=0, at_commit=3).describe()
