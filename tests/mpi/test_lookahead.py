"""Property tests for the conservative lookahead window.

:class:`repro.mpi.lookahead.LookaheadWindow` documents four invariants;
this suite checks them over Hypothesis-generated latency tables and
event schedules.  A generated schedule interleaves floor reports, sends
and releases under the two preconditions the sharded engine guarantees:

* a shard only emits with ``avail_time >= its floor + lookahead`` (the
  avail is the send clock plus at least the pair's minimum latency, and
  the floor is a lower bound on the send clock);
* per ``(src_rank, dest_rank)`` stream, avail times are nondecreasing
  (send clocks are monotone and the pair latency is fixed by the
  machine model).

Under those preconditions the window must guarantee: safety (no
release below a previously granted bound), grant monotonicity,
progress (all-blocked shards with traffic in transit can always
release something), and per-stream FIFO.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi.lookahead import LookaheadWindow

RANKS_PER_SHARD = 2


def _make_window(n_shards, lookahead):
    w = LookaheadWindow(n_shards, lookahead)
    for r in range(n_shards * RANKS_PER_SHARD):
        w.route(r, r // RANKS_PER_SHARD)
    return w


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------

class TestConstruction:
    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            LookaheadWindow(0)

    def test_negative_lookahead_rejected(self):
        with pytest.raises(ValueError):
            LookaheadWindow(2, -1e-9)
        with pytest.raises(ValueError):
            LookaheadWindow(2, [[0.0, -0.5], [0.5, 0.0]])

    def test_nan_lookahead_rejected(self):
        with pytest.raises(ValueError):
            LookaheadWindow(2, float("nan"))

    def test_bad_matrix_shape_rejected(self):
        with pytest.raises(ValueError):
            LookaheadWindow(3, [[0.0] * 3] * 2)
        with pytest.raises(ValueError):
            LookaheadWindow(2, [[0.0], [0.0, 0.0]])

    def test_triangle_closure(self):
        # direct 0->2 latency (9) exceeds the 0->1->2 relay (1+1): the
        # stored bound must be the shortest path or a relayed message
        # could undercut a granted bound.
        w = LookaheadWindow(3, [[0.0, 1.0, 9.0],
                                [1.0, 0.0, 1.0],
                                [9.0, 1.0, 0.0]])
        assert w.lookahead[0][2] == 2.0
        assert w.lookahead[2][0] == 2.0

    def test_route_range_checked(self):
        w = LookaheadWindow(2)
        with pytest.raises(ValueError):
            w.route(0, 2)
        with pytest.raises(ValueError):
            w.report(5, 0.0)


# ---------------------------------------------------------------------------
# Degenerate single-shard window
# ---------------------------------------------------------------------------

class TestSingleShard:
    def test_everything_releases_immediately(self):
        # With one shard there is no other shard to bound it: the safe
        # time is +inf and any queued envelope releases at once.  This
        # is the window half of the shards=1 == cooperative reduction
        # (the engine half is tests/mpi/test_sharded.py).
        w = _make_window(1, 0.0)
        assert w.lbts_for(0) == math.inf
        w.send(0, 1, avail_time=123.0)
        items = w.release(0)
        assert [(i[1], i[2], i[3]) for i in items] == [(0, 1, 123.0)]
        assert w.transit_count() == 0


# ---------------------------------------------------------------------------
# Schedule generation
# ---------------------------------------------------------------------------

def _schedules():
    """(n_shards, lookahead, ops) with engine-valid sends.

    Ops are abstract: (kind, *params) with params drawn uniformly; the
    executor resolves them against the window's current state so sends
    always satisfy the two engine preconditions.
    """
    n_shards = st.integers(min_value=2, max_value=4)
    delta = st.floats(min_value=0.0, max_value=5.0, allow_nan=False,
                      allow_infinity=False)
    op = st.one_of(
        st.tuples(st.just("report"), st.integers(0, 3), delta),
        st.tuples(st.just("block"), st.integers(0, 3)),
        st.tuples(st.just("send"), st.integers(0, 7), st.integers(0, 7),
                  delta),
        st.tuples(st.just("release"), st.integers(0, 3)),
    )
    lookahead = st.one_of(
        st.floats(min_value=0.0, max_value=2.0, allow_nan=False,
                  allow_infinity=False),
        st.lists(st.lists(st.floats(0.0, 2.0), min_size=4, max_size=4),
                 min_size=4, max_size=4),
    )
    return st.tuples(n_shards, lookahead, st.lists(op, max_size=60))


class _Executor:
    """Applies abstract ops to a window, tracking the model state needed
    to generate engine-valid sends and to check the four invariants."""

    def __init__(self, n_shards, lookahead):
        if not isinstance(lookahead, float):
            lookahead = [row[:n_shards] for row in lookahead[:n_shards]]
        self.w = _make_window(n_shards, lookahead)
        self.n = n_shards
        self.floors = [0.0] * n_shards          # model: rank-clock floor
        self.blocked = [False] * n_shards
        self.last_avail = {}                     # stream -> last avail
        self.sent_seqs = {}                      # stream -> enqueued seqs
        self.grants = list(self.w.granted)

    def check_monotone(self):
        for d in range(self.n):
            # Invariant 2: the granted safe time never decreases (the
            # raw delivery bound may dip, which is why the grant is the
            # promise — see the module docstring of lookahead.py).
            cur = self.w.granted[d]
            assert cur >= self.grants[d], (d, self.grants[d], cur)
            self.grants[d] = cur

    def apply(self, kind, *params):
        w = self.w
        if kind == "report":
            shard, delta = params[0] % self.n, params[1]
            if self.blocked[shard]:
                return  # a blocked shard wakes only via a release
            floor = self.floors[shard] + delta
            w.report(shard, floor)
            self.floors[shard] = floor
        elif kind == "block":
            shard = params[0] % self.n
            w.report(shard, None)
            self.blocked[shard] = True
        elif kind == "send":
            src = params[0] % (self.n * RANKS_PER_SHARD)
            dst = params[1] % (self.n * RANKS_PER_SHARD)
            s, d = w.shard_of(src), w.shard_of(dst)
            if s == d or self.blocked[s]:
                return  # intra-shard or from a blocked shard: no-ops
            avail = self.floors[s] + w.lookahead[s][d] + params[2]
            key = (src, dst)
            avail = max(avail, self.last_avail.get(key, 0.0))  # P2
            self.last_avail[key] = avail
            w.send(src, dst, avail)
            self.sent_seqs.setdefault(key, []).append(avail)
        elif kind == "release":
            dest = params[0] % self.n
            granted_before = w.granted[dest]
            items = w.release(dest)
            per_stream = {}
            for seq, src, dst, avail, _payload in items:
                assert w.shard_of(dst) == dest
                # Invariant 1 (safety): never below the previous grant.
                assert avail >= granted_before, (avail, granted_before)
                per_stream.setdefault((src, dst), []).append((seq, avail))
            if items:
                # The release wakes the destination: its ranks resume at
                # or above the waking envelopes' avail times, so future
                # reports/sends may come from as low as the minimum.
                self.blocked[dest] = False
                self.floors[dest] = min(self.floors[dest],
                                        min(i[3] for i in items))
            for key, got in per_stream.items():
                # Invariant 4 (FIFO): the released slice is the oldest
                # remaining prefix of the stream, in enqueue order.
                assert [s for s, _ in got] == sorted(s for s, _ in got)
                expect = self.sent_seqs[key][:len(got)]
                assert [a for _, a in got] == expect
                del self.sent_seqs[key][:len(got)]
        self.check_monotone()


@settings(max_examples=80, deadline=None)
@given(_schedules())
def test_safety_monotonicity_fifo(params):
    n_shards, lookahead, ops = params
    ex = _Executor(n_shards, lookahead)
    for op in ops:
        ex.apply(*op)
    # Drain: granted bounds only ever rise, releases stay safe.
    for _ in range(len(ops) + 1):
        if ex.w.transit_count() == 0:
            break
        for d in range(n_shards):
            ex.apply("report", d, 10.0)
        for d in range(n_shards):
            ex.apply("release", d)
    assert ex.w.transit_count() == 0


@settings(max_examples=80, deadline=None)
@given(_schedules())
def test_progress_when_all_blocked(params):
    # Invariant 3: with traffic in transit and every shard blocked, the
    # queued-traffic bound on each blocked shard's effective floor must
    # let at least one envelope through — the strict-barrier engine
    # would otherwise livelock at its quiescence point.
    n_shards, lookahead, ops = params
    ex = _Executor(n_shards, lookahead)
    for op in ops:
        if op[0] != "release":          # build up in-transit traffic
            ex.apply(*op)
    rounds = 0
    while ex.w.transit_count() > 0:
        for d in range(n_shards):
            ex.apply("block", d)
        released = sum(len(ex.w.release(d)) for d in range(n_shards))
        assert released > 0, "all-blocked shards with transit made no progress"
        ex.grants = list(ex.w.granted)
        rounds += 1
        assert rounds <= len(ops) + 1


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(-3.0, 3.0, allow_nan=False), max_size=20))
def test_report_clamps_monotone(deltas):
    # Invariant 2's precondition: a lower finite report is a stale
    # observation and must clamp to the previous floor, so lbts (here
    # floor + lookahead seen from the peer) never decreases.
    w = LookaheadWindow(2, 1.0)
    w.report(1, 1000.0)  # keep the peer's self-influence term inactive
    floor = hi = 0.0
    for delta in deltas:
        floor = max(0.0, floor + delta)
        w.report(0, floor)
        hi = max(hi, floor)
        assert w.lbts_for(1) == hi + 1.0


def test_blocked_shard_bounded_by_queued_traffic():
    # A blocked shard reports None; its effective floor becomes the
    # minimum avail queued *for* it, not its stale clock.
    w = _make_window(2, 1.0)
    w.report(0, 5.0)
    w.report(1, None)
    # Nothing queued for shard 1: it can emit nothing, so it does not
    # bound shard 0 at all.
    assert w.lbts_for(0) == math.inf
    # Queue traffic for shard 1: its future sends are now bounded by
    # what it has yet to receive (avail 7), plus the return lookahead.
    w.send(0, 2, avail_time=7.0)
    assert w.lbts_for(0) == 8.0
    assert w.lbts_for(1) == 6.0  # shard 0's floor 5 + lookahead 1


def test_release_wakes_blocked_destination():
    w = _make_window(2, 1.0)
    w.report(0, 5.0)
    w.report(1, None)
    w.send(0, 2, avail_time=5.5)   # below lbts_for(1) == 6
    items = w.release(1)
    assert [(i[1], i[2], i[3]) for i in items] == [(0, 2, 5.5)]
    # Grant: min(delivery bound 6, waking floor 5.5 + round trip 2).
    assert w.granted[1] == 6.0
    # The woken destination's floor dropped to the waking avail — its
    # ranks resume at or above 5.5 — so it now bounds shard 0 again.
    assert w.lbts_for(0) == 6.5


def test_drop_dest_unblocks_others():
    w = _make_window(2, 1.0)
    w.report(0, 5.0)
    w.report(1, 0.0)
    w.send(0, 2, avail_time=6.0)
    w.send(0, 3, avail_time=7.0)
    assert w.lbts_for(0) == 1.0  # held down by shard 1's floor
    assert w.drop_dest(1) == 2
    assert w.transit_count() == 0
    assert w.lbts_for(0) == math.inf  # the dead shard bounds no one
