"""Communicators, groups, splits, and cartesian topologies."""

import numpy as np
import pytest

from repro.mpi import PROC_NULL, Group
from repro.mpi.errors import (
    InvalidCommunicatorError, InvalidRankError, InvalidTagError,
)

from repro.testutil import run


class TestGroup:
    def test_rank_translation(self):
        g = Group([4, 2, 7])
        assert g.size() == 3
        assert g.rank_of(2) == 1
        assert g.rank_of(3) is None
        assert g.translate(2) == 7

    def test_equality(self):
        assert Group([1, 2]) == Group([1, 2])
        assert Group([1, 2]) != Group([2, 1])


class TestErrors:
    def test_invalid_dest_rank(self):
        def main(mpi):
            try:
                mpi.COMM_WORLD.Send(np.zeros(1), dest=99, tag=0)
            except InvalidRankError:
                return "raised"
        assert run(2, main).returns[0] == "raised"

    def test_negative_tag(self):
        def main(mpi):
            try:
                mpi.COMM_WORLD.Send(np.zeros(1), dest=0, tag=-5)
            except InvalidTagError:
                return "raised"
        assert run(2, main).returns[0] == "raised"

    def test_freed_communicator(self):
        def main(mpi):
            sub = mpi.COMM_WORLD.Dup()
            sub.Free()
            try:
                sub.Send(np.zeros(1), dest=0, tag=0)
            except InvalidCommunicatorError:
                return "raised"
        assert run(2, main).returns[0] == "raised"


class TestDup:
    def test_dup_isolates_traffic(self):
        def main(mpi):
            comm = mpi.COMM_WORLD
            dup = comm.Dup()
            if comm.rank == 0:
                comm.Send(np.array([1.0]), dest=1, tag=7)
                dup.Send(np.array([2.0]), dest=1, tag=7)
                return None
            buf = np.zeros(1)
            dup.Recv(buf, source=0, tag=7)   # must match the dup message
            first = buf[0]
            comm.Recv(buf, source=0, tag=7)
            return (first, buf[0])

        assert run(2, main).returns[1] == (2.0, 1.0)

    def test_dup_same_context_on_all_ranks(self):
        def main(mpi):
            return mpi.COMM_WORLD.Dup().context_id

        got = run(4, main).returns
        assert len(set(got)) == 1


class TestSplit:
    def test_split_groups_and_ranks(self):
        def main(mpi):
            comm = mpi.COMM_WORLD
            sub = comm.Split(color=comm.rank % 2, key=comm.rank)
            return (sub.size, sub.rank)

        got = run(5, main).returns
        assert got == [(3, 0), (2, 0), (3, 1), (2, 1), (3, 2)]

    def test_split_key_reorders(self):
        def main(mpi):
            comm = mpi.COMM_WORLD
            sub = comm.Split(color=0, key=-comm.rank)  # reverse order
            return sub.rank

        got = run(4, main).returns
        assert got == [3, 2, 1, 0]

    def test_split_undefined_color(self):
        def main(mpi):
            comm = mpi.COMM_WORLD
            sub = comm.Split(color=0 if comm.rank == 0 else -1)
            return sub is None

        got = run(3, main).returns
        assert got == [False, True, True]

    def test_communication_within_split(self):
        def main(mpi):
            comm = mpi.COMM_WORLD
            sub = comm.Split(color=comm.rank // 2, key=comm.rank)
            if sub.rank == 0:
                sub.Send(np.array([float(comm.rank)]), dest=1, tag=0)
                return None
            buf = np.zeros(1)
            sub.Recv(buf, source=0, tag=0)
            return buf[0]

        got = run(4, main).returns
        assert got == [None, 0.0, None, 2.0]


class TestCartesian:
    def test_coords_roundtrip(self):
        def main(mpi):
            cart = mpi.COMM_WORLD.Cart_create((2, 3), (False, True))
            coords = cart.Get_coords()
            return (coords, cart.Get_cart_rank(coords))

        for rank, (coords, back) in enumerate(run(6, main).returns):
            assert back == rank

    def test_shift_nonperiodic_boundary(self):
        def main(mpi):
            cart = mpi.COMM_WORLD.Cart_create((4,), (False,))
            return cart.Shift(0, 1)

        got = run(4, main).returns
        assert got[0] == (PROC_NULL, 1)
        assert got[3] == (2, PROC_NULL)

    def test_shift_periodic_wraps(self):
        def main(mpi):
            cart = mpi.COMM_WORLD.Cart_create((4,), (True,))
            return cart.Shift(0, 1)

        got = run(4, main).returns
        assert got[0] == (3, 1)
        assert got[3] == (2, 0)

    def test_grid_size_mismatch(self):
        def main(mpi):
            try:
                mpi.COMM_WORLD.Cart_create((2, 2), (False, False))
            except InvalidCommunicatorError:
                return "raised"

        assert run(6, main).returns[0] == "raised"

    def test_halo_exchange_on_grid(self):
        def main(mpi):
            cart = mpi.COMM_WORLD.Cart_create((2, 2), (True, True))
            north, south = cart.Shift(0, 1)
            buf = np.zeros(1)
            cart.Sendrecv(np.array([float(cart.rank)]), south, 1,
                          buf, north, 1)
            return buf[0]

        got = run(4, main).returns
        # rank r receives from its north neighbor (r+2)%4 in a 2x2 torus
        assert got == [2.0, 3.0, 0.0, 1.0]


def test_comm_self():
    def main(mpi):
        buf = np.zeros(1)
        req = mpi.COMM_SELF.Irecv(buf, source=0, tag=0)
        mpi.COMM_SELF.Send(np.array([5.0]), dest=0, tag=0)
        req.wait()
        return buf[0]

    assert run(3, main).returns == [5.0, 5.0, 5.0]
