"""Mailbox matching semantics: wildcards, ordering, truncation."""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi.errors import JobAborted, TruncationError
from repro.mpi.matching import ANY_SOURCE, ANY_TAG, Mailbox, PostedRecv, signature_matches
from repro.mpi.message import Envelope, MessageSignature


def env(source=0, tag=0, ctx=0, payload=b"x", dest=0, seq=0):
    return Envelope(MessageSignature(source, tag, ctx), payload, len(payload),
                    "MPI_BYTE", dest, seq=seq)


def mailbox():
    return Mailbox(0, threading.Event())


class TestSignatureMatching:
    def test_exact(self):
        assert signature_matches(env(1, 2, 3), 3, 1, 2)

    def test_wrong_context_never_matches(self):
        assert not signature_matches(env(1, 2, 3), 4, ANY_SOURCE, ANY_TAG)

    def test_any_source(self):
        assert signature_matches(env(5, 2, 0), 0, ANY_SOURCE, 2)

    def test_any_tag(self):
        assert signature_matches(env(1, 9, 0), 0, 1, ANY_TAG)

    def test_both_wildcards(self):
        assert signature_matches(env(7, 8, 0), 0, ANY_SOURCE, ANY_TAG)

    def test_source_mismatch(self):
        assert not signature_matches(env(1, 2, 0), 0, 2, 2)


class TestMailbox:
    def test_deliver_then_post(self):
        mb = mailbox()
        mb.deliver(env(1, 5, 0, b"abc"))
        pr = PostedRecv(0, 1, 5, 100)
        mb.post(pr)
        assert pr.matched
        assert pr.envelope.payload == b"abc"

    def test_post_then_deliver(self):
        mb = mailbox()
        pr = PostedRecv(0, ANY_SOURCE, ANY_TAG, 100)
        mb.post(pr)
        assert not pr.matched
        mb.deliver(env(2, 3, 0))
        assert pr.matched

    def test_earliest_posted_recv_wins(self):
        mb = mailbox()
        pr1 = PostedRecv(0, ANY_SOURCE, ANY_TAG, 100)
        pr2 = PostedRecv(0, ANY_SOURCE, ANY_TAG, 100)
        mb.post(pr1)
        mb.post(pr2)
        mb.deliver(env())
        assert pr1.matched and not pr2.matched

    def test_oldest_pending_message_wins(self):
        mb = mailbox()
        mb.deliver(env(0, 1, 0, b"first"))
        mb.deliver(env(0, 1, 0, b"second"))
        pr = PostedRecv(0, 0, 1, 100)
        mb.post(pr)
        assert pr.envelope.payload == b"first"

    def test_tag_selection_skips_nonmatching(self):
        # the app may consume messages out of arrival order by tag —
        # the paper's Section 2.4 observation
        mb = mailbox()
        mb.deliver(env(0, 1, 0, b"tag1"))
        mb.deliver(env(0, 2, 0, b"tag2"))
        pr = PostedRecv(0, 0, 2, 100)
        mb.post(pr)
        assert pr.envelope.payload == b"tag2"
        pr2 = PostedRecv(0, 0, 1, 100)
        mb.post(pr2)
        assert pr2.envelope.payload == b"tag1"

    def test_truncation_raises(self):
        mb = mailbox()
        mb.deliver(env(0, 0, 0, b"0123456789"))
        with pytest.raises(TruncationError):
            mb.post(PostedRecv(0, 0, 0, 4))

    def test_cancel_unmatched(self):
        mb = mailbox()
        pr = PostedRecv(0, 0, 0, 10)
        mb.post(pr)
        assert mb.cancel(pr)
        mb.deliver(env())
        assert not pr.matched
        assert mb.pending_count() == 1

    def test_cancel_matched_fails(self):
        mb = mailbox()
        mb.deliver(env())
        pr = PostedRecv(0, 0, 0, 10)
        mb.post(pr)
        assert not mb.cancel(pr)

    def test_probe_does_not_consume(self):
        mb = mailbox()
        mb.deliver(env(3, 4, 0))
        assert mb.probe_pending(0, 3, 4) is not None
        assert mb.pending_count() == 1

    def test_abort_wakes_wait(self):
        abort = threading.Event()
        mb = Mailbox(0, abort)
        abort.set()
        with pytest.raises(JobAborted):
            mb.wait_for(lambda: False)

    def test_stats(self):
        mb = mailbox()
        mb.deliver(env(payload=b"abcd"))
        mb.deliver(env(payload=b"ef"))
        assert mb.delivered_count == 2
        assert mb.delivered_bytes == 6


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 2)),
                min_size=1, max_size=12))
def test_per_signature_fifo(messages):
    """Property: messages with equal (source, tag) are received in send
    order, no matter how other signatures interleave (MPI non-overtaking)."""
    mb = mailbox()
    seq = {}
    for source, tag in messages:
        k = (source, tag)
        seq[k] = seq.get(k, 0) + 1
        mb.deliver(env(source, tag, 0, payload=str(seq[k]).encode()))
    got = {}
    for source, tag in messages:
        pr = PostedRecv(0, source, tag, 100)
        mb.post(pr)
        assert pr.matched
        k = (source, tag)
        got[k] = got.get(k, 0) + 1
        assert pr.envelope.payload == str(got[k]).encode()
