"""Mailbox matching semantics: wildcards, ordering, truncation."""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi.errors import JobAborted, TruncationError
from repro.mpi.matching import ANY_SOURCE, ANY_TAG, Mailbox, PostedRecv, signature_matches
from repro.mpi.message import Envelope, MessageSignature


def env(source=0, tag=0, ctx=0, payload=b"x", dest=0, seq=0):
    return Envelope(MessageSignature(source, tag, ctx), payload, len(payload),
                    "MPI_BYTE", dest, seq=seq)


def mailbox():
    return Mailbox(0, threading.Event())


class TestSignatureMatching:
    def test_exact(self):
        assert signature_matches(env(1, 2, 3), 3, 1, 2)

    def test_wrong_context_never_matches(self):
        assert not signature_matches(env(1, 2, 3), 4, ANY_SOURCE, ANY_TAG)

    def test_any_source(self):
        assert signature_matches(env(5, 2, 0), 0, ANY_SOURCE, 2)

    def test_any_tag(self):
        assert signature_matches(env(1, 9, 0), 0, 1, ANY_TAG)

    def test_both_wildcards(self):
        assert signature_matches(env(7, 8, 0), 0, ANY_SOURCE, ANY_TAG)

    def test_source_mismatch(self):
        assert not signature_matches(env(1, 2, 0), 0, 2, 2)


class TestMailbox:
    def test_deliver_then_post(self):
        mb = mailbox()
        mb.deliver(env(1, 5, 0, b"abc"))
        pr = PostedRecv(0, 1, 5, 100)
        mb.post(pr)
        assert pr.matched
        assert pr.envelope.payload == b"abc"

    def test_post_then_deliver(self):
        mb = mailbox()
        pr = PostedRecv(0, ANY_SOURCE, ANY_TAG, 100)
        mb.post(pr)
        assert not pr.matched
        mb.deliver(env(2, 3, 0))
        assert pr.matched

    def test_earliest_posted_recv_wins(self):
        mb = mailbox()
        pr1 = PostedRecv(0, ANY_SOURCE, ANY_TAG, 100)
        pr2 = PostedRecv(0, ANY_SOURCE, ANY_TAG, 100)
        mb.post(pr1)
        mb.post(pr2)
        mb.deliver(env())
        assert pr1.matched and not pr2.matched

    def test_oldest_pending_message_wins(self):
        mb = mailbox()
        mb.deliver(env(0, 1, 0, b"first"))
        mb.deliver(env(0, 1, 0, b"second"))
        pr = PostedRecv(0, 0, 1, 100)
        mb.post(pr)
        assert pr.envelope.payload == b"first"

    def test_tag_selection_skips_nonmatching(self):
        # the app may consume messages out of arrival order by tag —
        # the paper's Section 2.4 observation
        mb = mailbox()
        mb.deliver(env(0, 1, 0, b"tag1"))
        mb.deliver(env(0, 2, 0, b"tag2"))
        pr = PostedRecv(0, 0, 2, 100)
        mb.post(pr)
        assert pr.envelope.payload == b"tag2"
        pr2 = PostedRecv(0, 0, 1, 100)
        mb.post(pr2)
        assert pr2.envelope.payload == b"tag1"

    def test_truncation_raises(self):
        mb = mailbox()
        mb.deliver(env(0, 0, 0, b"0123456789"))
        with pytest.raises(TruncationError):
            mb.post(PostedRecv(0, 0, 0, 4))

    def test_cancel_unmatched(self):
        mb = mailbox()
        pr = PostedRecv(0, 0, 0, 10)
        mb.post(pr)
        assert mb.cancel(pr)
        mb.deliver(env())
        assert not pr.matched
        assert mb.pending_count() == 1

    def test_cancel_matched_fails(self):
        mb = mailbox()
        mb.deliver(env())
        pr = PostedRecv(0, 0, 0, 10)
        mb.post(pr)
        assert not mb.cancel(pr)

    def test_probe_does_not_consume(self):
        mb = mailbox()
        mb.deliver(env(3, 4, 0))
        assert mb.probe_pending(0, 3, 4) is not None
        assert mb.pending_count() == 1

    def test_abort_wakes_wait(self):
        abort = threading.Event()
        mb = Mailbox(0, abort)
        abort.set()
        with pytest.raises(JobAborted):
            mb.wait_for(lambda: False)

    def test_abort_after_delivery_still_completes(self):
        # Regression: the predicate must be checked before the abort flag,
        # or an operation whose match already arrived is retroactively
        # reported as JobAborted.
        abort = threading.Event()
        mb = Mailbox(0, abort)
        pr = PostedRecv(0, 0, 0, 100)
        mb.post(pr)
        mb.deliver(env(0, 0, 0, b"data"))
        abort.set()
        mb.wait_for(lambda: pr.matched)  # must NOT raise JobAborted
        assert pr.envelope.payload == b"data"

    def test_delivery_wakes_blocked_waiter_without_timeout(self):
        # The wait has no timeout poll: a delivery must wake it directly.
        mb = mailbox()
        pr = PostedRecv(0, 0, 0, 100)
        mb.post(pr)
        t = threading.Thread(target=mb.wait_for, args=(lambda: pr.matched,))
        t.start()
        mb.deliver(env(0, 0, 0))
        t.join(timeout=5.0)
        assert not t.is_alive()

    def test_stats(self):
        mb = mailbox()
        mb.deliver(env(payload=b"abcd"))
        mb.deliver(env(payload=b"ef"))
        assert mb.delivered_count == 2
        assert mb.delivered_bytes == 6


class TestWildcardOrdering:
    """Ordering guarantees of the signature-indexed mailbox: wildcard
    receives observe exactly the order a linear arrival-order scan gives."""

    def test_wildcard_recv_takes_oldest_across_signatures(self):
        mb = mailbox()
        mb.deliver(env(2, 9, 0, b"first"))
        mb.deliver(env(1, 3, 0, b"second"))
        pr = PostedRecv(0, ANY_SOURCE, ANY_TAG, 100)
        mb.post(pr)
        assert pr.envelope.payload == b"first"
        pr2 = PostedRecv(0, ANY_SOURCE, ANY_TAG, 100)
        mb.post(pr2)
        assert pr2.envelope.payload == b"second"

    def test_source_wildcard_respects_arrival_order_per_tag(self):
        mb = mailbox()
        mb.deliver(env(3, 7, 0, b"a"))
        mb.deliver(env(1, 7, 0, b"b"))
        mb.deliver(env(3, 8, 0, b"other-tag"))
        pr = PostedRecv(0, ANY_SOURCE, 7, 100)
        mb.post(pr)
        assert pr.envelope.payload == b"a"
        assert pr.envelope.source == 3

    def test_exact_posted_before_wildcard_wins(self):
        mb = mailbox()
        exact = PostedRecv(0, 1, 5, 100)
        wild = PostedRecv(0, ANY_SOURCE, ANY_TAG, 100)
        mb.post(exact)
        mb.post(wild)
        mb.deliver(env(1, 5, 0, b"x"))
        assert exact.matched and not wild.matched

    def test_wildcard_posted_before_exact_wins(self):
        mb = mailbox()
        wild = PostedRecv(0, ANY_SOURCE, ANY_TAG, 100)
        exact = PostedRecv(0, 1, 5, 100)
        mb.post(wild)
        mb.post(exact)
        mb.deliver(env(1, 5, 0, b"x"))
        assert wild.matched and not exact.matched
        mb.deliver(env(1, 5, 0, b"y"))
        assert exact.matched
        assert exact.envelope.payload == b"y"

    def test_probe_wildcard_returns_oldest(self):
        mb = mailbox()
        mb.deliver(env(5, 1, 0, b"old"))
        mb.deliver(env(4, 2, 0, b"new"))
        got = mb.probe_pending(0, ANY_SOURCE, ANY_TAG)
        assert got.payload == b"old"
        assert mb.pending_count() == 2

    def test_has_pending_per_context(self):
        mb = mailbox()
        assert not mb.has_pending(0)
        mb.deliver(env(0, 0, ctx=3))
        assert mb.has_pending(3)
        assert not mb.has_pending(0)
        pr = PostedRecv(3, 0, 0, 100)
        mb.post(pr)
        assert not mb.has_pending(3)

    def test_counts_track_buckets(self):
        mb = mailbox()
        for tag in range(4):
            mb.deliver(env(0, tag, 0))
        assert mb.pending_count() == 4
        assert mb.pending_count(0) == 4
        mb.post(PostedRecv(0, 0, 2, 100))
        assert mb.pending_count() == 3
        prs = [PostedRecv(0, 9, 9, 100), PostedRecv(0, ANY_SOURCE, 1, 100)]
        for pr in prs:
            mb.post(pr)
        assert mb.posted_count() == 1  # the wildcard matched tag 1 instantly
        assert mb.cancel(prs[0])
        assert mb.posted_count() == 0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 2)),
                min_size=1, max_size=12))
def test_per_signature_fifo(messages):
    """Property: messages with equal (source, tag) are received in send
    order, no matter how other signatures interleave (MPI non-overtaking)."""
    mb = mailbox()
    seq = {}
    for source, tag in messages:
        k = (source, tag)
        seq[k] = seq.get(k, 0) + 1
        mb.deliver(env(source, tag, 0, payload=str(seq[k]).encode()))
    got = {}
    for source, tag in messages:
        pr = PostedRecv(0, source, tag, 100)
        mb.post(pr)
        assert pr.matched
        k = (source, tag)
        got[k] = got.get(k, 0) + 1
        assert pr.envelope.payload == str(got[k]).encode()
