"""Reduction operations."""

import numpy as np
import pytest

from repro.mpi.errors import InvalidOpError
from repro.mpi.ops import (
    BUILTIN_OPS, LAND, LOR, MAX, MAXLOC, MIN, MINLOC, Op, PROD, SUM,
)


def test_builtin_registry():
    assert "MPI_SUM" in BUILTIN_OPS
    assert len(BUILTIN_OPS) == 12


def test_sum_prod_elementwise():
    a, b = np.array([1.0, 2.0]), np.array([3.0, 4.0])
    assert np.array_equal(SUM(a, b), [4.0, 6.0])
    assert np.array_equal(PROD(a, b), [3.0, 8.0])


def test_min_max():
    a, b = np.array([1.0, 5.0]), np.array([3.0, 4.0])
    assert np.array_equal(MAX(a, b), [3.0, 5.0])
    assert np.array_equal(MIN(a, b), [1.0, 4.0])


def test_logical():
    a = np.array([True, False, True])
    b = np.array([True, True, False])
    assert np.array_equal(LAND(a, b), [True, False, False])
    assert np.array_equal(LOR(a, b), [True, True, True])


def test_maxloc_tie_picks_lower_index():
    a = np.array([[5.0, 3.0]])
    b = np.array([[5.0, 1.0]])
    assert np.array_equal(MAXLOC(a, b), [[5.0, 1.0]])


def test_minloc():
    a = np.array([[2.0, 0.0]])
    b = np.array([[1.0, 4.0]])
    assert np.array_equal(MINLOC(a, b), [[1.0, 4.0]])


def test_user_op_create_and_free():
    op = Op.create(lambda a, b: a - b, commute=False, name="diff")
    assert not op.commutative
    assert np.array_equal(op(np.array([5.0]), np.array([2.0])), [3.0])
    op.free()
    with pytest.raises(InvalidOpError):
        op(np.array([1.0]), np.array([1.0]))


def test_handles_are_unique():
    a = Op.create(lambda x, y: x)
    b = Op.create(lambda x, y: y)
    assert a.handle != b.handle
