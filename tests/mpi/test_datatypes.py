"""Datatype construction, layout, and pack/unpack semantics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi import datatypes as dt
from repro.mpi.errors import InvalidDatatypeError


class TestNamedTypes:
    def test_sizes_match_numpy(self):
        assert dt.DOUBLE.size == 8
        assert dt.FLOAT.size == 4
        assert dt.INT.size == 4
        assert dt.BYTE.size == 1
        assert dt.DOUBLE_COMPLEX.size == 16

    def test_named_types_are_committed(self):
        assert dt.DOUBLE.committed

    def test_named_free_is_noop(self):
        dt.INT.Free()
        assert not dt.INT.freed

    def test_from_numpy_dtype(self):
        assert dt.from_numpy_dtype(np.float64) is dt.DOUBLE
        assert dt.from_numpy_dtype(np.int32) is dt.INT
        assert dt.from_numpy_dtype(np.complex128) is dt.DOUBLE_COMPLEX

    def test_from_numpy_dtype_unknown(self):
        with pytest.raises(InvalidDatatypeError):
            dt.from_numpy_dtype(np.dtype([("a", np.int32)]))

    def test_pack_roundtrip_scalar_array(self):
        a = np.arange(10.0)
        payload = dt.DOUBLE.pack(a, 10)
        b = np.zeros(10)
        dt.DOUBLE.unpack(payload, b, 10)
        assert np.array_equal(a, b)


class TestContiguous:
    def test_size_extent(self):
        t = dt.ContiguousType(4, dt.DOUBLE)
        assert t.size == 32
        assert t.extent == 32

    def test_requires_commit_for_pack(self):
        t = dt.ContiguousType(4, dt.DOUBLE)
        with pytest.raises(InvalidDatatypeError):
            t.pack(np.zeros(4), 1)
        t.Commit()
        t.pack(np.zeros(4), 1)

    def test_roundtrip(self):
        t = dt.ContiguousType(3, dt.INT).Commit()
        a = np.arange(6, dtype=np.int32)
        payload = t.pack(a, 2)
        b = np.zeros(6, dtype=np.int32)
        t.unpack(payload, b, 2)
        assert np.array_equal(a, b)


class TestVector:
    def test_layout(self):
        # 2 blocks of 2 elements with stride 3: indices 0,1,3,4
        t = dt.VectorType(2, 2, 3, dt.DOUBLE).Commit()
        a = np.arange(6.0)
        payload = t.pack(a, 1)
        got = np.frombuffer(payload, dtype=np.float64)
        assert np.array_equal(got, [0.0, 1.0, 3.0, 4.0])

    def test_unpack_scatters(self):
        t = dt.VectorType(2, 1, 2, dt.DOUBLE).Commit()
        b = np.zeros(4)
        t.unpack(np.array([7.0, 9.0]).tobytes(), b, 1)
        assert np.array_equal(b, [7.0, 0.0, 9.0, 0.0])

    def test_extent(self):
        t = dt.VectorType(3, 2, 4, dt.FLOAT)
        # last block starts at 2*4=8, ends at 10 elements -> 40 bytes
        assert t.extent == 10 * 4
        assert t.size == 6 * 4

    def test_column_of_matrix(self):
        n = 5
        t = dt.VectorType(n, 1, n, dt.DOUBLE).Commit()
        m = np.arange(25.0).reshape(5, 5)
        payload = t.pack(np.ascontiguousarray(m), 1)
        col = np.frombuffer(payload, dtype=np.float64)
        assert np.array_equal(col, m[:, 0])


class TestIndexed:
    def test_layout(self):
        t = dt.IndexedType([2, 1], [0, 4], dt.DOUBLE).Commit()
        a = np.arange(6.0)
        got = np.frombuffer(t.pack(a, 1), dtype=np.float64)
        assert np.array_equal(got, [0.0, 1.0, 4.0])

    def test_mismatched_arrays(self):
        with pytest.raises(InvalidDatatypeError):
            dt.IndexedType([1, 2], [0], dt.INT)


class TestStruct:
    def test_heterogeneous(self):
        t = dt.StructType([1, 1], [0, 8], [dt.INT, dt.DOUBLE]).Commit()
        assert t.size == 12
        buf = bytearray(16)
        np.frombuffer(buf, dtype=np.int32)[0] = 42
        np.frombuffer(buf, dtype=np.float64)[1] = 2.5
        payload = t.pack(buf, 1)
        out = bytearray(16)
        t.unpack(payload, out, 1)
        assert np.frombuffer(out, dtype=np.int32)[0] == 42
        assert np.frombuffer(out, dtype=np.float64)[1] == 2.5


class TestHierarchy:
    def test_nested_vector_of_contiguous(self):
        inner = dt.ContiguousType(2, dt.DOUBLE)
        outer = dt.VectorType(2, 1, 2, inner).Commit()
        a = np.arange(8.0)
        got = np.frombuffer(outer.pack(a, 1), dtype=np.float64)
        # blocks of (2 doubles) at inner-extents 0 and 2 -> elems 0,1,4,5
        assert np.array_equal(got, [0.0, 1.0, 4.0, 5.0])

    def test_freed_base_rejected(self):
        base = dt.ContiguousType(2, dt.DOUBLE)
        base.Free()
        with pytest.raises(InvalidDatatypeError):
            dt.VectorType(2, 1, 2, base)

    def test_double_free(self):
        t = dt.ContiguousType(2, dt.DOUBLE)
        t.Free()
        with pytest.raises(InvalidDatatypeError):
            t.Free()


class TestPackErrors:
    def test_truncated_payload(self):
        t = dt.ContiguousType(4, dt.DOUBLE).Commit()
        with pytest.raises(InvalidDatatypeError):
            t.unpack(b"\x00" * 8, np.zeros(4), 1)

    def test_non_contiguous_buffer(self):
        a = np.zeros((4, 4))[:, 0]
        with pytest.raises(InvalidDatatypeError):
            dt.DOUBLE.pack(a, 4)


@settings(max_examples=60, deadline=None)
@given(
    count=st.integers(1, 5),
    blocklength=st.integers(1, 4),
    gap=st.integers(0, 4),
    elements=st.integers(1, 3),
)
def test_vector_pack_unpack_roundtrip(count, blocklength, gap, elements):
    """Property: pack followed by unpack restores exactly the described
    bytes, for any vector geometry and element count."""
    stride = blocklength + gap
    t = dt.VectorType(count, blocklength, stride, dt.DOUBLE).Commit()
    span = ((count - 1) * stride + blocklength) * elements or 1
    rng = np.random.default_rng(42)
    a = rng.standard_normal(span + 3)
    payload = t.pack(a, elements)
    assert len(payload) == t.size * elements
    b = np.zeros_like(a)
    t.unpack(payload, b, elements)
    # every described position matches; others remain zero
    offs = np.asarray(t.byte_offsets()) // 8
    described = set()
    for e in range(elements):
        described.update(offs + e * t.extent // 8)
    for i in range(len(a)):
        if i in described:
            assert b[i] == a[i]
        else:
            assert b[i] == 0.0
