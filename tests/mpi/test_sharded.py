"""Sharded engine: differential battery against the cooperative oracle.

Every test here runs the same seeded job under ``engine="cooperative"``
and ``engine="sharded:N"`` and compares results.  The contract (see
DESIGN.md §10):

* schedule-independent kernels — including wildcard- and
  collective-heavy ones — produce **bitwise-identical** ``JobResult``s:
  returns, per-rank virtual clocks, sent counts, sent bytes;
* C3 kill + restart sequences produce bitwise-identical recovered
  results, restart counts, and final protocol stats;
* fault runs pin the victim's failure record (rank and reason exactly;
  the fail-stop *observation* clock is schedule-coupled — cooperative
  marks a fault due the instant *any* rank's clock crosses ``at_time``,
  and shard clocks drift within an epoch window — so it differs across
  engines while staying deterministic within each);
* cross-shard deadlocks are detected instantly and report the same
  blocked-rank set as the cooperative engine;
* ``shards=1`` degenerates to the cooperative scheduler exactly.
"""

import numpy as np
import pytest

from repro.core import C3Config, run_c3, run_original
from repro.core.ccc import run_fault_tolerant
from repro.mpi import FaultPlan, FaultSpec, SUM, TESTING, run_job
from repro.mpi.engine import resolve_backend
from repro.mpi.sharded import plan_shards
from repro.mpi.timemodel import LEMIEUX
from repro.storage import InMemoryStorage


def _job_equal(a, b):
    """Bitwise JobResult equivalence (the differential criterion)."""
    assert a.returns == b.returns
    assert a.clocks == b.clocks
    assert a.sent_counts == b.sent_counts
    assert a.sent_bytes == b.sent_bytes
    assert [(r, str(e)) for r, e in a.errors] == [(r, str(e)) for r, e in b.errors]


def _run_both(nprocs, main, shards=2, **kw):
    coop = run_job(nprocs, main, engine="cooperative", **kw)
    shard = run_job(nprocs, main, engine=f"sharded:{shards}", **kw)
    return coop, shard


# ---------------------------------------------------------------------------
# Backend selection / shard planning
# ---------------------------------------------------------------------------

class TestBackendSelection:
    def test_aliases(self):
        assert resolve_backend("sharded") == "sharded"
        assert resolve_backend("shard") == "sharded"
        assert resolve_backend("SHARDS") == "sharded"
        assert resolve_backend("sharded:4") == "sharded:4"
        assert resolve_backend("shard:2") == "sharded:2"

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("sharded:0")
        with pytest.raises(ValueError):
            resolve_backend("sharded:two")
        with pytest.raises(ValueError):
            resolve_backend("cooperative:2")

    def test_plan_shards_contiguous_node_blocks(self):
        # 8 ranks, 4 per node -> 2 nodes; never split a node across shards
        assert plan_shards(8, 4, 2) == [[0, 1, 2, 3], [4, 5, 6, 7]]
        # more shards than nodes clamps to one node per shard
        assert plan_shards(8, 4, 16) == [[0, 1, 2, 3], [4, 5, 6, 7]]
        # uneven node counts: leading shards take the extra node
        assert plan_shards(6, 2, 2) == [[0, 1, 2, 3], [4, 5]]

    def test_plan_shards_single(self):
        assert plan_shards(4, 1, 1) == [[0, 1, 2, 3]]


# ---------------------------------------------------------------------------
# Differential battery: schedule-independent kernels, bitwise
# ---------------------------------------------------------------------------

def _ring_kernel(mpi):
    r, s = mpi.rank, mpi.size
    buf = np.zeros(8)
    acc = 0.0
    for it in range(12):
        mpi.compute(1e-4 * (1 + (r * 5 + it) % 3))
        req = mpi.COMM_WORLD.Irecv(buf, source=(r - 1) % s, tag=3)
        mpi.COMM_WORLD.Send(np.arange(8.0) * (r + 1) + it, dest=(r + 1) % s,
                            tag=3)
        req.wait()
        acc += float(buf.sum())
    return acc


def _wildcard_kernel(mpi):
    """Wildcard-heavy, schedule-independent: every rank sums one message
    from every peer, received with ``ANY_SOURCE``.  The sum is invariant
    under match order, and each rank computes past every peer's send
    instant before receiving, so completion clocks are dominated by the
    receiver's own clock — bitwise across engines even though the
    *match order* of the wildcards is schedule-coupled."""
    r, s = mpi.rank, mpi.size
    acc = 0.0
    for it in range(6):
        for q in range(s):
            if q != r:
                mpi.COMM_WORLD.Send(np.array([float(r * 100 + it)]),
                                    dest=q, tag=it)
        mpi.compute(1e-3 + 1e-5 * ((r + it) % 4))
        buf = np.zeros(1)
        for _ in range(s - 1):
            mpi.COMM_WORLD.Recv(buf, tag=it)  # ANY_SOURCE
            acc += float(buf[0])
    return acc


def _collective_kernel(mpi):
    r, s = mpi.rank, mpi.size
    x = np.arange(4.0) * (r + 1)
    acc = 0.0
    for it in range(8):
        mpi.compute(1e-4 * (1 + (r * 3 + it) % 2))
        out = np.zeros(4)
        mpi.COMM_WORLD.Allreduce(x + it, out, SUM)
        mpi.COMM_WORLD.Bcast(out, root=it % s)
        mpi.COMM_WORLD.Barrier()
        acc += float(out.sum())
    return acc


class TestDifferentialBitwise:
    def test_ring_kernel_bitwise(self):
        coop, shard = _run_both(4, _ring_kernel, wall_timeout=60)
        coop.raise_errors(); shard.raise_errors()
        _job_equal(coop, shard)

    def test_wildcard_heavy_kernel_bitwise(self):
        coop, shard = _run_both(6, _wildcard_kernel, wall_timeout=60)
        coop.raise_errors(); shard.raise_errors()
        _job_equal(coop, shard)

    def test_collective_heavy_kernel_bitwise(self):
        coop, shard = _run_both(6, _collective_kernel, wall_timeout=60)
        coop.raise_errors(); shard.raise_errors()
        _job_equal(coop, shard)

    def test_multirank_nodes_bitwise(self):
        # LEMIEUX packs 4 ranks per node: the shard boundary must follow
        # node boundaries, and intra-node traffic stays in-shard.
        coop = run_job(8, _ring_kernel, machine=LEMIEUX,
                       engine="cooperative", wall_timeout=60)
        shard = run_job(8, _ring_kernel, machine=LEMIEUX,
                        engine="sharded:2", wall_timeout=60)
        coop.raise_errors(); shard.raise_errors()
        _job_equal(coop, shard)

    def test_three_shards_bitwise(self):
        coop, shard = _run_both(6, _ring_kernel, shards=3, wall_timeout=60)
        coop.raise_errors(); shard.raise_errors()
        _job_equal(coop, shard)

    def test_sharded_self_reproducible(self):
        a = run_job(4, _wildcard_kernel, engine="sharded:2", wall_timeout=60)
        b = run_job(4, _wildcard_kernel, engine="sharded:2", wall_timeout=60)
        a.raise_errors(); b.raise_errors()
        _job_equal(a, b)


class TestSingleShardReduction:
    def test_shards_1_is_exactly_cooperative(self):
        coop, shard = _run_both(4, _ring_kernel, shards=1, wall_timeout=60)
        coop.raise_errors(); shard.raise_errors()
        _job_equal(coop, shard)

    def test_shards_1_deadlock_matches(self):
        def stuck(mpi):
            if mpi.rank == 0:
                mpi.COMM_WORLD.Recv(np.zeros(1), source=1, tag=7)
            return mpi.rank

        coop, shard = _run_both(2, stuck, shards=1, wall_timeout=30)
        assert [(r, str(e)) for r, e in coop.errors] == \
            [(r, str(e)) for r, e in shard.errors]
        assert coop.errors and "deadlock" in str(coop.errors[0][1])


# ---------------------------------------------------------------------------
# Faults: victim record + cross-shard abort propagation
# ---------------------------------------------------------------------------

class TestFaultDifferential:
    def test_kill_victim_record(self):
        def plan():
            return FaultPlan([FaultSpec(rank=2, at_time=5e-4)])

        coop = run_job(4, _ring_kernel, engine="cooperative",
                       fault_plan=plan(), wall_timeout=60)
        shard = run_job(4, _ring_kernel, engine="sharded:2",
                        fault_plan=plan(), wall_timeout=60)
        assert coop.failure is not None and shard.failure is not None
        assert shard.failure.rank == coop.failure.rank == 2
        assert shard.failure.reason == coop.failure.reason
        # the victim observes the fail-stop at its next check point after
        # *any* clock crossed at_time — a schedule-coupled instant that
        # differs across engines (shards drift within an epoch window) —
        # but it is deterministic within an engine:
        again = run_job(4, _ring_kernel, engine="sharded:2",
                        fault_plan=plan(), wall_timeout=60)
        assert (again.failure.rank, again.failure.time, again.failure.reason) \
            == (shard.failure.rank, shard.failure.time, shard.failure.reason)
        assert shard.returns[2] is None

    def test_op_count_kill_bitwise_victim(self):
        # after_ops faults fire inside the victim's own call stream: no
        # cross-rank observation, so the record matches exactly.
        def plan():
            return FaultPlan([FaultSpec(rank=1, after_ops=15)])

        coop = run_job(4, _ring_kernel, engine="cooperative",
                       fault_plan=plan(), wall_timeout=60)
        shard = run_job(4, _ring_kernel, engine="sharded:2",
                        fault_plan=plan(), wall_timeout=60)
        assert coop.failure is not None and shard.failure is not None
        assert (shard.failure.rank, shard.failure.time, shard.failure.reason) \
            == (coop.failure.rank, coop.failure.time, coop.failure.reason)


class TestCrossShardDeadlock:
    def test_deadlock_across_nodes_names_blocked_ranks(self):
        # ranks 0 and 3 live on different nodes -> different shards;
        # both block forever on receives nobody will send.
        def stuck(mpi):
            r = mpi.rank
            if r in (0, 3):
                mpi.COMM_WORLD.Recv(np.zeros(1), source=(r + 1) % mpi.size,
                                    tag=9)
            return r

        coop, shard = _run_both(4, stuck, wall_timeout=30)
        ec = [(r, str(e)) for r, e in coop.errors]
        es = [(r, str(e)) for r, e in shard.errors]
        assert ec == es
        assert len(es) == 1 and "blocked ranks: [0, 3]" in es[0][1]

    def test_all_ranks_deadlocked_across_shards(self):
        def stuck(mpi):
            mpi.COMM_WORLD.Recv(np.zeros(1), source=(mpi.rank + 1) % mpi.size,
                                tag=11)
            return mpi.rank

        coop, shard = _run_both(4, stuck, wall_timeout=30)
        assert [(r, str(e)) for r, e in coop.errors] == \
            [(r, str(e)) for r, e in shard.errors]
        assert "blocked ranks: [0, 1, 2, 3]" in str(shard.errors[0][1])


# ---------------------------------------------------------------------------
# C3 protocol: clean runs and kill+restart, differential
# ---------------------------------------------------------------------------

def _dense_app(ctx):
    comm = ctx.comm
    r, s = ctx.rank, ctx.size
    if ctx.first_time("setup"):
        ctx.state.x = np.arange(6.0) * (r + 1)
        ctx.state.inbox = np.zeros(6)
        ctx.state.acc = 0.0
        ctx.done("setup")
    for it in ctx.range("i", 15):
        ctx.checkpoint()
        ctx.compute(1e-4 * (1 + (r * 7 + it) % 3))
        req = comm.Irecv(ctx.state.inbox, source=(r - 1) % s, tag=1)
        comm.Send(ctx.state.x, dest=(r + 1) % s, tag=1)
        comm.Wait(req)
        ctx.state.x = ctx.state.inbox * 0.9 + it
        out = np.zeros(1)
        comm.Allreduce(np.array([float(ctx.state.x.sum())]), out, SUM)
        ctx.state.acc += float(out[0])
    return round(ctx.state.acc, 6)


class TestC3Differential:
    def _interval(self):
        ref = run_original(_dense_app, 4)
        ref.raise_errors()
        return ref.virtual_time * 0.2

    def test_clean_c3_run_bitwise(self):
        interval = self._interval()

        def run(engine):
            res, stats = run_c3(_dense_app, 4, storage=InMemoryStorage(),
                                config=C3Config(checkpoint_interval=interval),
                                wall_timeout=120, engine=engine)
            res.raise_errors()
            return res, stats

        rc, sc = run("cooperative")
        rs, ss = run("sharded:2")
        _job_equal(rc, rs)
        assert [s.__dict__ for s in sc] == [s.__dict__ for s in ss]

    def test_kill_restart_bitwise(self):
        interval = self._interval()

        def run(engine):
            res = run_fault_tolerant(
                _dense_app, 4, storage=InMemoryStorage(),
                config=C3Config(checkpoint_interval=interval),
                fault_plan=FaultPlan([FaultSpec(rank=2,
                                                at_time=interval * 2.75)]),
                wall_timeout=120, engine=engine)
            res.job.raise_errors()
            return res

        a = run("cooperative")
        b = run("sharded:2")
        assert a.restarts == b.restarts >= 1
        _job_equal(a.job, b.job)
        assert [s.__dict__ for s in a.stats] == [s.__dict__ for s in b.stats]


# ---------------------------------------------------------------------------
# Campaign smoke slice, cell by cell
# ---------------------------------------------------------------------------

#: campaign record fields that encode drain-position-coupled virtual
#: timings (drain-triggered commit actions land at control-drain
#: observation points, DESIGN.md §10) — compared under a tight relative
#: tolerance instead of bitwise.
_TIMING_FIELDS = ("clean_c3_seconds", "c3_overhead_pct")
#: fields derived from *failed* executions' makespans: a failed run ends
#: when the survivors observe the fail-stop abort, which is a wall-
#: position-coupled instant — not compared across engines (the recovered
#: run's makespan, run_seconds[-1], still is).
_ABORT_FIELDS = ("run_seconds", "total_faulty_seconds",
                 "restart_cost_seconds")


class TestCampaignSlice:
    def test_smoke_cells_match_cell_by_cell(self):
        import dataclasses

        from repro.harness.campaign import _measure_scenario, smoke_matrix

        for scenario in smoke_matrix(nprocs=4)[:2]:
            rc = _measure_scenario(
                dataclasses.replace(scenario, engine="cooperative"))
            rs = _measure_scenario(
                dataclasses.replace(scenario, engine="sharded:2"))
            assert rc.get("error") is None and rs.get("error") is None, \
                (rc.get("error"), rs.get("error"))
            for k, v in rc.items():
                if k == "engine":
                    assert rs[k] == "sharded:2"
                elif k in _TIMING_FIELDS:
                    a, b = np.atleast_1d(v), np.atleast_1d(rs[k])
                    assert np.allclose(a, b, rtol=5e-3), (scenario.label, k, v, rs[k])
                elif k == "run_seconds":
                    # Failed-run makespans are abort-observation times;
                    # the recovered run must agree to tight tolerance.
                    assert len(rs[k]) == len(v), (scenario.label, k)
                    assert np.allclose(rs[k][-1], v[-1], rtol=5e-3), \
                        (scenario.label, k, v, rs[k])
                elif k in _ABORT_FIELDS:
                    assert (rs[k] > 0) == (v > 0), (scenario.label, k)
                else:
                    assert rs[k] == v, (scenario.label, k, v, rs[k])
            assert rc["verified"] and rs["verified"]
