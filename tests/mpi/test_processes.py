"""``engine="processes"``: real forked processes, real SIGKILL faults.

The acceptance contract (DESIGN.md §12, pinned here):

* clean runs are **bitwise-identical** to the cooperative oracle —
  returns, per-rank virtual clocks, sent counts, sent bytes;
* a due fault is delivered as an actual ``SIGKILL`` to the victim's
  node process, confirmed via ``os.waitpid`` status and recorded as
  evidence in ``JobResult.real_kills`` (both the structural self-kill
  path and the coordinator-strike path for blocked ``at_time``
  victims);
* the kill/restart/verify pipeline recovers from WAL stable storage on
  real disk and verifies bitwise against the golden run;
* fault-injected jobs on storage that dies with the killed process are
  refused up front with instructions, and the service layer rejects
  unknown engine spellings at submission construction.
"""

import signal

import numpy as np
import pytest

from repro.mpi import FaultPlan, FaultSpec, run_job
from repro.mpi.errors import ProcessFailure


def _job_equal(a, b):
    """Bitwise JobResult equivalence (the differential criterion)."""
    assert a.returns == b.returns
    assert a.clocks == b.clocks
    assert a.sent_counts == b.sent_counts
    assert a.sent_bytes == b.sent_bytes
    assert ([(r, str(e)) for r, e in a.errors]
            == [(r, str(e)) for r, e in b.errors])


def _ring_kernel(mpi):
    r, s = mpi.rank, mpi.size
    buf = np.zeros(8)
    acc = 0.0
    for it in range(12):
        mpi.compute(1e-4 * (1 + (r * 5 + it) % 3))
        req = mpi.COMM_WORLD.Irecv(buf, source=(r - 1) % s, tag=3)
        mpi.COMM_WORLD.Send(np.arange(8.0) * (r + 1) + it,
                            dest=(r + 1) % s, tag=3)
        req.wait()
        acc += float(buf.sum())
    return acc


# ---------------------------------------------------------------------------
# Clean runs: the differential battery criterion
# ---------------------------------------------------------------------------

class TestCleanDifferential:
    def test_ring_kernel_bitwise(self):
        coop = run_job(4, _ring_kernel, engine="cooperative",
                       wall_timeout=60)
        proc = run_job(4, _ring_kernel, engine="processes",
                       wall_timeout=60)
        coop.raise_errors(); proc.raise_errors()
        _job_equal(coop, proc)
        assert proc.real_kills == []

    def test_packed_into_two_processes_bitwise(self):
        coop = run_job(4, _ring_kernel, engine="cooperative",
                       wall_timeout=60)
        proc = run_job(4, _ring_kernel, engine="processes:2",
                       wall_timeout=60)
        coop.raise_errors(); proc.raise_errors()
        _job_equal(coop, proc)

    def test_single_node_still_forks(self):
        # one simulated node must NOT degenerate to the in-process
        # cooperative path: a later fault could never really kill the
        # caller, so even the clean single-node job runs in a fork
        result = run_job(1, lambda mpi: mpi.rank * 10, engine="processes",
                         wall_timeout=30)
        result.raise_errors()
        assert result.returns == [0]


# ---------------------------------------------------------------------------
# Real SIGKILL delivery, waitpid-confirmed
# ---------------------------------------------------------------------------

class TestRealKills:
    def test_structural_fault_self_kills_with_evidence(self):
        plan = FaultPlan([FaultSpec(rank=2, after_ops=10)])
        result = run_job(4, _ring_kernel, engine="processes",
                         fault_plan=plan, wall_timeout=60)
        assert result.failure is not None
        assert result.failure.rank == 2
        assert len(result.real_kills) == 1
        ev = result.real_kills[0]
        assert ev["rank"] == 2
        assert ev["termsig"] == signal.SIGKILL
        assert ev["sigkill"] is True
        assert ev["pid"] > 0
        assert len(plan.fired) == 1

    def test_at_time_fault_killed_with_evidence(self):
        golden = run_job(4, _ring_kernel, engine="cooperative",
                         wall_timeout=60)
        golden.raise_errors()
        at = golden.virtual_time * 0.5
        plan = FaultPlan([FaultSpec(rank=1, at_time=at)])
        result = run_job(4, _ring_kernel, engine="processes",
                         fault_plan=plan, wall_timeout=60)
        assert result.failure is not None
        assert result.failure.rank == 1
        assert [ev["sigkill"] for ev in result.real_kills] == [True]
        assert result.real_kills[0]["rank"] == 1

    def test_survivors_report_the_failure(self):
        plan = FaultPlan([FaultSpec(rank=0, after_ops=8)])
        result = run_job(4, _ring_kernel, engine="processes",
                         fault_plan=plan, wall_timeout=60)
        # injected fail-stop is an expected outcome: recorded as the
        # failure (with the victim's identity), never as an error
        assert isinstance(result.failure, ProcessFailure)
        assert result.failure.rank == 0
        result.raise_errors()

    def test_simulated_engines_report_no_real_kills(self):
        plan = FaultPlan([FaultSpec(rank=1, after_ops=8)])
        result = run_job(4, _ring_kernel, engine="cooperative",
                         fault_plan=plan, wall_timeout=60)
        assert result.failure is not None
        assert result.real_kills == []


# ---------------------------------------------------------------------------
# Kill + restart from WAL stable storage on real disk
# ---------------------------------------------------------------------------

class TestRecoveryFromDisk:
    @pytest.mark.parametrize("app", ["ring", "heat"])
    def test_kill_restart_verify_over_wal_disk(self, app):
        from repro.harness.campaign import CAMPAIGN_PARAMS
        from repro.harness.jobs import open_store
        from repro.harness.runner import measure_recovery
        from repro.mpi.timemodel import TESTING

        with open_store("wal-disk") as factory:
            row = measure_recovery(
                app, 4, TESTING, dict(CAMPAIGN_PARAMS.get(app, {})),
                kills=[{"rank": 1, "frac": 0.5}],
                engine="processes", storage_factory=factory)
        assert row["verified"], row
        assert row["verified_recovery"]
        assert row["restarts"] >= 1
        assert row["real_kills"] >= 1
        assert row["engine"] == "processes"

    def test_cooperative_row_reports_zero_real_kills(self):
        from repro.harness.campaign import CAMPAIGN_PARAMS
        from repro.harness.jobs import open_store
        from repro.harness.runner import measure_recovery
        from repro.mpi.timemodel import TESTING

        with open_store("wal-disk") as factory:
            row = measure_recovery(
                "ring", 4, TESTING, dict(CAMPAIGN_PARAMS.get("ring", {})),
                kills=[{"rank": 1, "frac": 0.5}],
                engine="cooperative", storage_factory=factory)
        assert row["verified"]
        assert row["real_kills"] == 0


# ---------------------------------------------------------------------------
# Storage precondition: refuse faults over storage that dies with us
# ---------------------------------------------------------------------------

class TestSharedStorePrecondition:
    def test_fault_job_on_memory_store_refused(self):
        from repro.core import C3Config, run_c3
        from repro.harness.runner import APPS
        from repro.storage import InMemoryStorage

        plan = FaultPlan([FaultSpec(rank=1, after_ops=8)])
        with pytest.raises(ValueError, match="disk-backed store"):
            run_c3(APPS["ring"], 4, storage=InMemoryStorage(),
                   config=C3Config(checkpoint_interval=0.001),
                   fault_plan=plan, engine="processes", wall_timeout=60)

    def test_clean_job_on_memory_store_allowed(self):
        from repro.core import C3Config, run_c3
        from repro.harness.runner import APPS
        from repro.storage import InMemoryStorage

        result, _stats = run_c3(
            APPS["ring"], 4, storage=InMemoryStorage(),
            config=C3Config(checkpoint_interval=0.001),
            engine="processes", wall_timeout=60)
        result.raise_errors()


# ---------------------------------------------------------------------------
# Campaign capability skips and the service layer
# ---------------------------------------------------------------------------

class TestCampaignSkips:
    def test_fault_scenario_on_memory_storage_skipped_with_reason(self):
        from repro.harness.campaign import (
            build_matrix, run_campaign, skip_reason,
        )

        scenarios = build_matrix(["ring"], ["testing"], ["mid_run"],
                                 engine="processes", storage="memory")
        assert len(scenarios) == 1
        reason = skip_reason(scenarios[0])
        assert reason is not None and "SIGKILL" in reason
        report = run_campaign(scenarios, parallel=False)
        assert report.ok
        [row] = report.rows
        assert row["skipped"] == reason
        assert report.summary()["skipped"] == 1
        assert report.summary()["passed"] == 0

    def test_disk_backed_scenario_not_skipped(self):
        from repro.harness.campaign import build_matrix, skip_reason

        for storage in ("disk", "wal-disk"):
            [s] = build_matrix(["ring"], ["testing"], ["mid_run"],
                               engine="processes", storage=storage)
            assert skip_reason(s) is None

    def test_simulated_engines_never_skip(self):
        from repro.harness.campaign import build_matrix, skip_reason

        for engine in (None, "cooperative", "threads", "sharded:2"):
            [s] = build_matrix(["ring"], ["testing"], ["mid_run"],
                               engine=engine, storage="memory")
            assert skip_reason(s) is None


class TestServiceValidation:
    def test_jobspec_rejects_unknown_engine_at_construction(self):
        from repro.service import JobSpec

        with pytest.raises(ValueError,
                           match="unknown engine backend 'mpi4py'"):
            JobSpec(app="ring", engine="mpi4py")

    def test_jobspec_accepts_registry_spellings(self):
        from repro.service import JobSpec

        for engine in (None, "coop", "processes:2", "shard:4"):
            JobSpec(app="ring", engine=engine)

    def test_service_default_engine_applied_and_cached(self):
        import asyncio

        from repro.service import CampaignService, JobSpec
        from repro.storage.stable import DiskStorage

        async def go(tmp):
            svc = CampaignService(backend=DiskStorage(tmp), workers=1,
                                  default_engine="procs")
            assert svc.default_engine == "processes"
            async with svc:
                job = await svc.submit("alice", JobSpec(
                    app="ring", kills=({"rank": 1, "frac": 0.5},),
                    storage="wal-disk"))
                rows = await job.result()
                again = await svc.submit("alice", JobSpec(
                    app="ring", kills=({"rank": 1, "frac": 0.5},),
                    storage="wal-disk"))
                rows2 = await again.result()
            assert job.spec.engine == "processes"
            assert [r["engine"] for r in rows] == ["processes"]
            assert rows[0]["verified"]
            assert rows[0]["real_kills"] >= 1
            assert again.cached
            assert rows2 == rows

        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            asyncio.run(go(tmp))

    def test_service_rejects_bad_default_engine(self):
        from repro.service import CampaignService

        with pytest.raises(ValueError, match="unknown engine backend"):
            CampaignService(default_engine="bogus")


# ---------------------------------------------------------------------------
# Uniform CLI rejection: unknown engine exits 2 from every study CLI
# ---------------------------------------------------------------------------

_STUDY_MAINS = [
    "repro.harness.campaign",
    "repro.harness.scaling",
    "repro.harness.overlap",
    "repro.harness.sizes",
    "repro.harness.walstudy",
    "repro.harness.shardstudy",
    "repro.harness.fuzz",
    "repro.harness.loadgen",
    "repro.harness.procstudy",
]


class TestUniformEngineCLI:
    @pytest.mark.parametrize("module", _STUDY_MAINS)
    def test_unknown_engine_exits_2(self, module, capsys):
        import importlib

        main = importlib.import_module(module).main
        with pytest.raises(SystemExit) as ei:
            main(["--engine", "mpi4py"])
        assert ei.value.code == 2
        err = capsys.readouterr().err
        assert "unknown engine backend 'mpi4py'" in err

    @pytest.mark.parametrize("module", _STUDY_MAINS)
    def test_bad_count_suffix_exits_2(self, module, capsys):
        import importlib

        main = importlib.import_module(module).main
        with pytest.raises(SystemExit) as ei:
            main(["--engine", "cooperative:2"])
        assert ei.value.code == 2
        assert "takes no ':N' suffix" in capsys.readouterr().err
