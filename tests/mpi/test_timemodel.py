"""Machine models and the virtual clock."""

import pytest
from hypothesis import given, strategies as st

from repro.mpi.timemodel import (
    CMI, LEMIEUX, MACHINES, MachineModel, RankClock, TESTING, VELOCITY2,
)


class TestRankClock:
    def test_advance(self):
        c = RankClock()
        assert c.advance(1.5) == 1.5
        assert c.now == 1.5

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            RankClock().advance(-1)

    def test_sync_to_only_moves_forward(self):
        c = RankClock(5.0)
        c.sync_to(3.0)
        assert c.now == 5.0
        c.sync_to(7.0)
        assert c.now == 7.0


class TestMachineModel:
    def test_transfer_time_components(self):
        m = MachineModel("m", 1e9, latency=1e-5, bandwidth=1e8,
                         call_overhead=0, c3_call_overhead=0)
        assert m.transfer_time(0) == 1e-5
        assert m.transfer_time(1e8) == pytest.approx(1.0 + 1e-5)

    def test_disk_times(self):
        m = TESTING
        assert m.disk_write_time(0) == m.disk_latency
        assert m.disk_read_time(10**9) > m.disk_write_time(0)

    def test_with_overrides_does_not_mutate(self):
        m2 = LEMIEUX.with_overrides(latency=1.0)
        assert m2.latency == 1.0
        assert LEMIEUX.latency != 1.0

    def test_registry_contains_paper_platforms(self):
        for name in ("lemieux", "velocity2", "cmi", "solaris", "linux"):
            assert name in MACHINES

    def test_velocity2_piggyback_penalty_is_the_anomaly(self):
        # the modelled source of the paper's SMG2000-on-Velocity2 blow-up
        assert VELOCITY2.piggyback_overhead > 10 * LEMIEUX.piggyback_overhead
        assert VELOCITY2.piggyback_overhead > 10 * CMI.piggyback_overhead

    def test_quadrics_faster_than_gige(self):
        assert LEMIEUX.latency < VELOCITY2.latency
        assert LEMIEUX.bandwidth > VELOCITY2.bandwidth


@given(st.lists(st.floats(0, 1e3), max_size=20))
def test_clock_is_monotone(increments):
    c = RankClock()
    prev = 0.0
    for dt in increments:
        now = c.advance(dt)
        assert now >= prev
        prev = now
