"""The execution-backend registry: one source of truth for engines.

DESIGN.md §12: ``repro.mpi.backends`` owns the backend vocabulary —
spellings, capability flags, availability probes, watchdog ownership —
and every other layer (``Engine.run`` dispatch, the study CLIs'
``--engine``, ``service.JobSpec`` validation) derives from it.  These
tests pin the registry contents, the resolution semantics the old
inline table provided (so existing spellings keep working), the
capability flags the studies consult, the unified watchdog's no-leak
guarantee, and the degrade-with-a-reason path for a registered but
unavailable backend.
"""

import threading

import pytest

from repro.mpi import run_job
from repro.mpi.backends import (
    BACKENDS, ExecutionBackend, backend_for, engine_choices, engine_help,
    resolve_backend, split_spec,
)
from repro.mpi.processes import ProcessesBackend


# ---------------------------------------------------------------------------
# Registry contents and resolution
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_four_backends_registered(self):
        assert engine_choices() == ["cooperative", "threads", "sharded",
                                    "processes"]

    def test_every_backend_is_self_consistent(self):
        for name, b in BACKENDS.items():
            assert b.name == name
            assert isinstance(b, ExecutionBackend)
            assert b.summary  # folded into the shared --engine help

    def test_aliases_resolve_to_canonical(self):
        assert resolve_backend("coop") == "cooperative"
        assert resolve_backend("threaded") == "threads"
        assert resolve_backend("shard") == "sharded"
        assert resolve_backend("process") == "processes"
        assert resolve_backend("procs") == "processes"
        assert resolve_backend("PROCESSES") == "processes"

    def test_count_suffix_only_for_count_backends(self):
        assert resolve_backend("processes:2") == "processes:2"
        assert resolve_backend("procs:8") == "processes:8"
        with pytest.raises(ValueError, match="takes no ':N' suffix"):
            resolve_backend("threads:2")
        with pytest.raises(ValueError, match="bad worker count"):
            resolve_backend("processes:zero")

    def test_unknown_engine_message_names_known_backends(self):
        with pytest.raises(ValueError) as ei:
            resolve_backend("mpi4py")
        msg = str(ei.value)
        assert "unknown engine backend 'mpi4py'" in msg
        for name in engine_choices():
            assert name in msg

    def test_repro_engine_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "procs:3")
        assert resolve_backend(None) == "processes:3"
        monkeypatch.delenv("REPRO_ENGINE")
        assert resolve_backend(None) == "cooperative"

    def test_split_spec_and_backend_for(self):
        assert split_spec("processes:4") == ("processes", 4)
        assert split_spec("coop") == ("cooperative", None)
        assert backend_for("shard:2") is BACKENDS["sharded"]
        assert backend_for(None) is BACKENDS["cooperative"]

    def test_engine_help_derives_from_registry(self):
        text = engine_help()
        for name in engine_choices():
            assert name in text
        assert "sharded[:N]" in text
        assert "processes[:N]" in text


class TestCapabilityFlags:
    def test_oracle_is_deterministic_and_simulated(self):
        coop = BACKENDS["cooperative"]
        assert coop.deterministic
        assert not coop.supports_real_kill
        assert not coop.supports_shards
        assert not coop.uses_wall_timer

    def test_threads_flags(self):
        threads = BACKENDS["threads"]
        assert not threads.deterministic
        assert threads.uses_wall_timer
        assert not threads.supports_real_kill

    def test_sharded_flags(self):
        sharded = BACKENDS["sharded"]
        assert sharded.supports_shards
        assert sharded.takes_count
        assert not sharded.supports_real_kill

    def test_processes_flags(self):
        procs = BACKENDS["processes"]
        assert procs.supports_real_kill
        assert procs.supports_shards
        assert procs.takes_count
        assert procs.deterministic


# ---------------------------------------------------------------------------
# Unified watchdog ownership (the Timer-leak bugfix)
# ---------------------------------------------------------------------------

def _live_timers():
    return [t for t in threading.enumerate()
            if isinstance(t, threading.Timer) and t.is_alive()]


class _Stub:
    def __init__(self):
        self.deadline_fired = False

    def _on_wall_deadline(self):  # pragma: no cover - must not fire
        self.deadline_fired = True


class TestWatchdogOwnership:
    def test_timer_cancelled_on_clean_exit(self):
        class Quick(ExecutionBackend):
            name = "quick"
            uses_wall_timer = True

            def _launch(self, engine, body, timeout, errors, returns):
                pass

        stub = _Stub()
        Quick().launch(stub, lambda r: None, 30.0, [], [])
        deadline = threading.Event()
        for _ in range(50):
            if not _live_timers():
                break
            deadline.wait(0.05)
        assert not _live_timers()
        assert not stub.deadline_fired

    def test_timer_cancelled_when_launch_raises(self):
        class Boom(ExecutionBackend):
            name = "boom"
            uses_wall_timer = True

            def _launch(self, engine, body, timeout, errors, returns):
                raise RuntimeError("mid-launch failure")

        stub = _Stub()
        with pytest.raises(RuntimeError, match="mid-launch"):
            Boom().launch(stub, lambda r: None, 30.0, [], [])
        for _ in range(50):
            if not _live_timers():
                break
            threading.Event().wait(0.05)
        assert not _live_timers()
        assert not stub.deadline_fired

    def test_threads_job_leaves_no_timer_behind(self):
        result = run_job(2, lambda mpi: mpi.rank, engine="threads",
                         wall_timeout=30)
        result.raise_errors()
        for _ in range(50):
            if not _live_timers():
                break
            threading.Event().wait(0.05)
        assert not _live_timers()

    def test_cooperative_never_arms_a_timer(self):
        before = len(_live_timers())
        result = run_job(2, lambda mpi: mpi.rank, engine="cooperative",
                         wall_timeout=30)
        result.raise_errors()
        assert len(_live_timers()) <= before


# ---------------------------------------------------------------------------
# Registered-but-unavailable: degrade with a clear reason
# ---------------------------------------------------------------------------

class TestUnavailableDegrade:
    def test_unavailable_backend_warns_and_completes(self, monkeypatch):
        monkeypatch.setattr(
            ProcessesBackend, "available",
            lambda self: "no fork on this platform (test)")
        with pytest.warns(RuntimeWarning,
                          match="'processes' is unavailable here "
                                r"\(no fork on this platform \(test\)\)"):
            result = run_job(2, lambda mpi: mpi.rank, engine="processes",
                             wall_timeout=30)
        result.raise_errors()
        # degraded to the oracle: correct results, no real kills
        assert result.returns == [0, 1]
        assert result.real_kills == []

    def test_available_backend_does_not_warn(self, recwarn):
        result = run_job(2, lambda mpi: mpi.rank, engine="processes",
                         wall_timeout=30)
        result.raise_errors()
        assert result.returns == [0, 1]
        assert not [w for w in recwarn.list
                    if issubclass(w.category, RuntimeWarning)]
