"""Non-blocking requests: isend/irecv, wait/test families, cancellation."""

import numpy as np
import pytest

from repro.mpi.errors import InvalidRequestError

from repro.testutil import run


def test_isend_irecv_wait():
    def main(mpi):
        comm = mpi.COMM_WORLD
        if comm.rank == 0:
            req = comm.Isend(np.arange(4.0), dest=1, tag=9)
            st = req.wait()
            return st.source
        buf = np.zeros(4)
        req = comm.Irecv(buf, source=0, tag=9)
        st = req.wait()
        return (buf.tolist(), st.source, st.tag, st.count)

    got = run(2, main).returns
    assert got[1] == ([0.0, 1.0, 2.0, 3.0], 0, 9, 4)


def test_wait_twice_raises():
    def main(mpi):
        comm = mpi.COMM_WORLD
        if comm.rank == 0:
            comm.Send(np.zeros(1), dest=1, tag=0)
            return None
        buf = np.zeros(1)
        req = comm.Irecv(buf, source=0, tag=0)
        req.wait()
        try:
            req.wait()
        except InvalidRequestError:
            return "raised"
        return "no error"

    assert run(2, main).returns[1] == "raised"


def test_test_polls_until_complete():
    def main(mpi):
        comm = mpi.COMM_WORLD
        if comm.rank == 0:
            buf = np.zeros(1)
            req = comm.Irecv(buf, source=1, tag=1)
            polls = 0
            while True:
                done, st = req.test()
                if done:
                    return (polls >= 0, buf[0], st.source)
                polls += 1
        else:
            mpi.compute(1e-3)
            comm.Send(np.array([42.0]), dest=0, tag=1)
            return None

    ok, value, source = run(2, main).returns[0]
    assert ok and value == 42.0 and source == 1


def test_waitall_order():
    def main(mpi):
        comm = mpi.COMM_WORLD
        if comm.rank == 0:
            bufs = [np.zeros(1) for _ in range(3)]
            reqs = [comm.Irecv(bufs[i], source=1, tag=i) for i in range(3)]
            statuses = mpi.Waitall(reqs)
            return ([b[0] for b in bufs], [s.tag for s in statuses])
        for i in (2, 0, 1):  # send out of tag order
            comm.Send(np.array([float(i * 10)]), dest=0, tag=i)
        return None

    values, tags = run(2, main).returns[0]
    assert values == [0.0, 10.0, 20.0]
    assert tags == [0, 1, 2]


def test_waitany_returns_a_completed_index():
    def main(mpi):
        comm = mpi.COMM_WORLD
        if comm.rank == 0:
            bufs = [np.zeros(1) for _ in range(2)]
            reqs = [comm.Irecv(bufs[i], source=i + 1, tag=5) for i in range(2)]
            idx, st = mpi.Waitany(reqs)
            idx2, st2 = mpi.Waitany(reqs)
            return sorted([idx, idx2]), sorted([st.source, st2.source])
        comm.Send(np.array([1.0]), dest=0, tag=5)
        return None

    indices, sources = run(3, main).returns[0]
    assert indices == [0, 1]
    assert sources == [1, 2]


def test_waitsome_collects_all_ready():
    def main(mpi):
        comm = mpi.COMM_WORLD
        if comm.rank == 0:
            bufs = [np.zeros(1) for _ in range(3)]
            reqs = [comm.Irecv(bufs[i], source=1, tag=i) for i in range(3)]
            collected = 0
            while collected < 3:
                indices, statuses = mpi.Waitsome(reqs)
                collected += len(indices)
            return collected
        for i in range(3):
            comm.Send(np.zeros(1), dest=0, tag=i)
        return None

    assert run(2, main).returns[0] == 3


def test_testall_all_or_nothing():
    def main(mpi):
        comm = mpi.COMM_WORLD
        if comm.rank == 0:
            bufs = [np.zeros(1), np.zeros(1)]
            reqs = [comm.Irecv(bufs[i], source=1, tag=i) for i in range(2)]
            done, _ = mpi.Testall(reqs)
            first = done
            comm.Send(np.zeros(1), dest=1, tag=99)  # unblock the sender
            while True:
                done, statuses = mpi.Testall(reqs)
                if done:
                    return (first, len(statuses))
        else:
            buf = np.zeros(1)
            comm.Send(np.zeros(1), dest=0, tag=0)
            comm.Recv(buf, source=0, tag=99)
            comm.Send(np.zeros(1), dest=0, tag=1)
            return None

    first, n = run(2, main).returns[0]
    assert n == 2


def test_cancel_unmatched_recv():
    def main(mpi):
        comm = mpi.COMM_WORLD
        buf = np.zeros(1)
        req = comm.Irecv(buf, source=mpi.rank, tag=77)
        return req.cancel()

    assert run(1, main).returns[0] is True


def test_sendrecv_exchange():
    def main(mpi):
        comm = mpi.COMM_WORLD
        r, s = comm.rank, comm.size
        out = np.array([float(r)])
        buf = np.zeros(1)
        comm.Sendrecv(out, (r + 1) % s, 3, buf, (r - 1) % s, 3)
        return buf[0]

    got = run(4, main).returns
    assert got == [3.0, 0.0, 1.0, 2.0]


def test_recv_from_proc_null_is_immediate():
    def main(mpi):
        comm = mpi.COMM_WORLD
        buf = np.ones(4)
        st = comm.Recv(buf, source=mpi.PROC_NULL, tag=0)
        return (st.count, buf.tolist())

    count, buf = run(1, main).returns[0]
    assert count == 0
    assert buf == [1.0, 1.0, 1.0, 1.0]  # untouched
