"""Engine behavior: results, virtual time, faults, deadlock watchdog."""

import threading

import numpy as np
import pytest

from repro.mpi import (
    DeadlockError, Engine, FaultPlan, FaultSpec, MachineModel, TESTING,
    run_job,
)

from repro.testutil import run


class TestBasics:
    def test_returns_per_rank(self):
        result = run(4, lambda mpi: mpi.rank * 2)
        assert result.returns == [0, 2, 4, 6]

    def test_single_rank(self):
        result = run(1, lambda mpi: "solo")
        assert result.returns == ["solo"]

    def test_nprocs_validation(self):
        with pytest.raises(ValueError):
            Engine(0)

    def test_app_exception_collected(self):
        def main(mpi):
            if mpi.rank == 1:
                raise ValueError("boom")
            mpi.COMM_WORLD.Barrier()

        result = run_job(3, main, wall_timeout=30)
        assert result.errors and result.errors[0][0] == 1
        with pytest.raises(RuntimeError, match="boom"):
            result.raise_errors()

    def test_processor_names(self):
        machine = TESTING.with_overrides(procs_per_node=2)
        result = run_job(4, lambda mpi: mpi.Get_processor_name(),
                         machine=machine)
        assert result.returns[0] == result.returns[1]
        assert result.returns[2] != result.returns[0]


class TestVirtualTime:
    def test_compute_advances_clock(self):
        def main(mpi):
            mpi.compute(0.5)
            return mpi.Wtime()

        result = run(1, main)
        assert result.returns[0] >= 0.5
        assert result.virtual_time >= 0.5

    def test_work_uses_flop_rate(self):
        machine = TESTING.with_overrides(flops_per_proc=1e6)
        def main(mpi):
            mpi.work(2e6)
            return mpi.Wtime()

        result = run_job(1, main, machine=machine)
        assert result.returns[0] == pytest.approx(2.0)

    def test_message_latency_charged_to_receiver(self):
        machine = TESTING.with_overrides(latency=1e-3, call_overhead=0.0)

        def main(mpi):
            comm = mpi.COMM_WORLD
            if comm.rank == 0:
                comm.Send(np.zeros(1), dest=1, tag=0)
            else:
                comm.Recv(np.zeros(1), source=0, tag=0)
            return mpi.Wtime()

        result = run_job(2, main, machine=machine)
        assert result.returns[0] < 1e-4          # sender pays ~nothing
        assert result.returns[1] >= 1e-3         # receiver pays the latency

    def test_bandwidth_term(self):
        machine = TESTING.with_overrides(latency=0.0, bandwidth=1e6,
                                         call_overhead=0.0)

        def main(mpi):
            comm = mpi.COMM_WORLD
            if comm.rank == 0:
                comm.Send(np.zeros(125_000), dest=1, tag=0)  # 1 MB
            else:
                comm.Recv(np.zeros(125_000), source=0, tag=0)
            return mpi.Wtime()

        result = run_job(2, main, machine=machine)
        assert result.returns[1] == pytest.approx(1.0, rel=0.01)

    def test_blocked_receiver_syncs_to_sender_time(self):
        def main(mpi):
            comm = mpi.COMM_WORLD
            if comm.rank == 0:
                mpi.compute(2.0)
                comm.Send(np.zeros(1), dest=1, tag=0)
            else:
                comm.Recv(np.zeros(1), source=0, tag=0)
            return mpi.Wtime()

        result = run(2, main)
        assert result.returns[1] >= 2.0


class TestFaults:
    def test_after_ops_trigger(self):
        plan = FaultPlan([FaultSpec(rank=1, after_ops=3)])

        def main(mpi):
            comm = mpi.COMM_WORLD
            for i in range(10):
                comm.Send(np.zeros(1), dest=(mpi.rank + 1) % 2, tag=i)
                comm.Recv(np.zeros(1), source=(mpi.rank + 1) % 2, tag=i)
            return "finished"

        result = run_job(2, main, fault_plan=plan, wall_timeout=30)
        assert result.failure is not None
        assert result.failure.rank == 1
        assert "finished" not in result.returns

    def test_at_time_trigger(self):
        plan = FaultPlan([FaultSpec(rank=0, at_time=0.5)])

        def main(mpi):
            for _ in range(100):
                mpi.compute(0.05)
                mpi.COMM_WORLD.Barrier()
            return "finished"

        result = run_job(2, main, fault_plan=plan, wall_timeout=30)
        assert result.failure is not None
        assert result.failure.time >= 0.5

    def test_fault_spec_requires_trigger(self):
        with pytest.raises(ValueError):
            FaultSpec(rank=0)

    def test_surviving_ranks_unwind(self):
        plan = FaultPlan([FaultSpec(rank=0, after_ops=1)])

        def main(mpi):
            comm = mpi.COMM_WORLD
            comm.Barrier()
            comm.Barrier()
            return "finished"

        result = run_job(4, main, fault_plan=plan, wall_timeout=30)
        assert result.failure is not None
        assert result.returns == [None] * 4
        assert not result.errors  # JobAborted is not an application error

    def test_fired_specs_do_not_refire(self):
        plan = FaultPlan([FaultSpec(rank=0, after_ops=1)])

        def main(mpi):
            mpi.COMM_WORLD.Barrier()
            return "ok"

        first = run_job(2, main, fault_plan=plan, wall_timeout=30)
        assert first.failure is not None
        second = run_job(2, main, fault_plan=plan, wall_timeout=30)
        assert second.failure is None
        assert second.returns == ["ok", "ok"]


class TestRankStacks:
    def test_stack_size_restored_only_after_threads_start(self, monkeypatch):
        """Regression: ``threading.stack_size`` takes effect at thread
        *start*; restoring the old value before the start loop silently
        reverted the intended 1 MiB rank stacks."""
        events = []
        real_stack_size = threading.stack_size

        def recording_stack_size(*args):
            events.append(("stack_size", args))
            return real_stack_size(*args)

        real_start = threading.Thread.start

        def recording_start(self):
            if self.name.startswith("rank-"):
                events.append(("start", self.name))
            return real_start(self)

        monkeypatch.setattr(threading, "stack_size", recording_stack_size)
        monkeypatch.setattr(threading.Thread, "start", recording_start)
        result = run_job(2, lambda mpi: mpi.rank, wall_timeout=30,
                         engine="threads")
        assert result.returns == [0, 1]

        set_idx = next(i for i, (kind, a) in enumerate(events)
                       if kind == "stack_size" and a == (1 << 20,))
        restore_idx = next(i for i in range(set_idx + 1, len(events))
                           if events[i][0] == "stack_size"
                           and events[i][1] != (1 << 20,))
        start_idxs = [i for i, (kind, _) in enumerate(events) if kind == "start"]
        assert len(start_idxs) == 2
        # 1 MiB applied before every rank start; restored only afterwards
        assert set_idx < min(start_idxs)
        assert restore_idx > max(start_idxs)


class TestAbortUnification:
    def test_error_abort_unwinds_peers_at_call_entry(self):
        """Regression: error-triggered aborts (failure is None) must unwind
        ranks at MPI call entry just like fault-triggered ones."""
        def main(mpi):
            if mpi.rank == 1:
                raise ValueError("boom")
            # Blocks on a bare OS event (not a simulated-MPI wait), so this
            # regression is only expressible on the free-running threaded
            # backend; the cooperative equivalent lives in
            # tests/mpi/test_cooperative.py.
            assert mpi._ctx.engine.abort_event.wait(timeout=30)
            mpi.COMM_WORLD.Send(np.zeros(1), dest=0, tag=0)
            return "survived"

        result = run_job(2, main, wall_timeout=60, engine="threads")
        assert result.errors and result.errors[0][0] == 1
        assert result.returns[0] is None  # unwound, did not outlive the abort

    def test_abort_unwinds_nonblocking_test_poll_loop(self):
        """Regression: a rank spinning on MPI_Test never reaches a blocking
        wait; the abort must still unwind it (via the C3-style poll hook)."""
        def main(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 1:
                raise ValueError("boom")
            req = comm.Irecv(np.zeros(1), source=1, tag=0)
            while True:
                mpi._ctx.poll_hook()
                done, _ = req.test()
                if done:  # pragma: no cover - the sender died
                    return "got it"

        result = run_job(2, main, wall_timeout=60)
        assert result.errors and result.errors[0][0] == 1
        assert result.returns[0] is None


class TestVirtualTimeFaultScheduler:
    def test_blocked_victim_is_woken_by_peer_clock_crossing(self):
        """A rank blocked in a receive is killed promptly once any rank's
        virtual clock crosses the fault time — event-driven, not by poll."""
        plan = FaultPlan([FaultSpec(rank=0, at_time=1.0)])

        def main(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                # Blocks forever; clock stays at ~0 < at_time.
                comm.Recv(np.zeros(1), source=1, tag=0)
                return "received"
            mpi.compute(2.0)  # crosses the fault time on rank 1's clock
            return "computed"

        result = run_job(2, main, fault_plan=plan, wall_timeout=20)
        assert result.failure is not None
        assert result.failure.rank == 0
        # wall time proves event-driven delivery (no 300 s deadline wait)
        assert result.wall_seconds < 10.0

    def test_fired_at_time_specs_not_rearmed_on_restart(self):
        plan = FaultPlan([FaultSpec(rank=0, at_time=0.1)])

        def main(mpi):
            mpi.compute(0.5)
            mpi.COMM_WORLD.Barrier()
            return "ok"

        first = run_job(2, main, fault_plan=plan, wall_timeout=30)
        assert first.failure is not None and first.failure.rank == 0
        second = run_job(2, main, fault_plan=plan, wall_timeout=30)
        assert second.failure is None
        assert second.returns == ["ok", "ok"]


class TestDeadlockWatchdog:
    def test_detects_never_matching_recv(self):
        def main(mpi):
            if mpi.rank == 0:
                mpi.COMM_WORLD.Recv(np.zeros(1), source=1, tag=1)
            return "done"

        result = run_job(2, main, wall_timeout=1.0)
        assert result.errors
        assert "deadlock" in result.errors[0][1].lower() or \
               "timeout" in result.errors[0][1].lower()


class TestContextIds:
    def test_context_for_is_stable(self):
        engine = Engine(2)
        a = engine.context_for(("k", 1))
        b = engine.context_for(("k", 1))
        c = engine.context_for(("k", 2))
        assert a == b
        assert a != c
        assert a[1] == a[0] + 1  # shadow pairs
