"""Cooperative scheduler: paper-scale smoke, backend equivalence,
instant deadlock detection, spin fairness, and backend selection."""

import numpy as np
import pytest

from repro.core.ccc import run_original
from repro.apps import heat, ring
from repro.mpi import FaultPlan, FaultSpec, SUM, TESTING, run_job
from repro.mpi.engine import resolve_backend


class TestBackendSelection:
    def test_default_is_cooperative(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_backend(None) == "cooperative"

    def test_aliases(self):
        assert resolve_backend("coop") == "cooperative"
        assert resolve_backend("threaded") == "threads"
        assert resolve_backend("THREADS") == "threads"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown engine backend"):
            run_job(2, lambda mpi: mpi.rank, engine="fibers")

    def test_env_var_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "threads")
        assert resolve_backend(None) == "threads"
        # explicit argument beats the environment
        assert resolve_backend("cooperative") == "cooperative"

    def test_threads_backend_still_runs(self):
        result = run_job(4, lambda mpi: mpi.rank, engine="threads")
        assert result.returns == [0, 1, 2, 3]


class TestPaperScaleSmoke:
    """The tentpole: jobs at the paper's true process counts."""

    def test_ring_256_ranks(self):
        result = run_original(ring, 256, app_args=(),
                              machine=TESTING, wall_timeout=120)
        result.raise_errors()
        assert result.failure is None
        assert len(result.returns) == 256
        # every rank returns the same global checksum structure
        assert len({str(r) for r in result.returns}) >= 1
        assert all(c > 0 for c in result.clocks)

    def test_heat_halo_256_ranks(self):
        def app(ctx):
            return heat(ctx, local_n=8, niter=4)

        result = run_original(app, 256, machine=TESTING, wall_timeout=120)
        result.raise_errors()
        assert result.failure is None
        assert len(result.returns) == 256

    def test_fault_injection_at_scale(self):
        """A mid-run kill at 64 ranks: victim dies, every peer unwinds."""
        def main(mpi):
            comm = mpi.COMM_WORLD
            x = np.zeros(1)
            for _ in range(50):
                mpi.compute(1e-3)
                comm.Allreduce(np.array([1.0]), x, SUM)
            return float(x[0])

        plan = FaultPlan([FaultSpec(rank=33, at_time=0.02)])
        result = run_job(64, main, fault_plan=plan, wall_timeout=60,
                         engine="cooperative")
        assert result.failure is not None
        assert result.failure.rank == 33
        assert not result.errors

    def test_runs_are_bit_reproducible(self):
        """Determinism: two cooperative runs agree on every observable."""
        def main(mpi):
            comm = mpi.COMM_WORLD
            buf = np.zeros(4)
            right = (mpi.rank + 1) % mpi.size
            left = (mpi.rank - 1) % mpi.size
            comm.Send(np.full(4, float(mpi.rank)), dest=right, tag=1)
            comm.Recv(buf, source=left, tag=mpi.ANY_TAG)
            out = np.zeros(1)
            comm.Allreduce(np.array([buf.sum()]), out, SUM)
            return float(out[0])

        a = run_job(32, main, wall_timeout=60, engine="cooperative")
        b = run_job(32, main, wall_timeout=60, engine="cooperative")
        assert a.returns == b.returns
        assert a.clocks == b.clocks
        assert a.sent_counts == b.sent_counts


def _wildcard_kernel(mpi):
    """Seeded, wildcard-heavy, schedule-independent kernel.

    Wildcards are exercised two ways that keep matching deterministic
    under ANY thread interleaving, so both backends must produce
    bit-identical results:

    * ``ANY_TAG`` receives from a *specific* source — the overflow
      (wildcard) list arbitration runs, but per-source FIFO pins the
      match order;
    * ``ANY_SOURCE`` receives with the senders serialized by barriers —
      one sender has in-flight traffic at a time.
    """
    comm = mpi.COMM_WORLD
    rank, size = mpi.rank, mpi.size
    rng = np.random.default_rng(1234 + rank)
    right, left = (rank + 1) % size, (rank - 1) % size
    K = 4

    # phase 1: ANY_TAG wildcards from a pinned source
    bufs = [np.empty(8) for _ in range(K)]
    reqs = [comm.Irecv(bufs[i], source=left, tag=mpi.ANY_TAG)
            for i in range(K)]
    for i in range(K):
        comm.Send(rng.standard_normal(8), dest=right, tag=10 + i)
    statuses = mpi.Waitall(reqs)
    tags = [st.tag for st in statuses]
    total = float(sum(b.sum() for b in bufs))

    # phase 2: ANY_SOURCE wildcards, senders serialized by barriers
    recv_sum = 0.0
    for sender in range(size):
        comm.Barrier()
        if rank == sender:
            for i in range(2):
                comm.Send(np.full(4, float(sender + i)),
                          dest=(sender + 1) % size, tag=77)
        elif rank == (sender + 1) % size:
            for _ in range(2):
                buf = np.zeros(4)
                comm.Recv(buf, source=mpi.ANY_SOURCE, tag=77)
                recv_sum += float(buf.sum())
    out = np.zeros(1)
    comm.Allreduce(np.array([total + recv_sum]), out, SUM)
    return (tags, float(out[0]), mpi.Wtime())


class TestBackendEquivalence:
    """Threads and cooperative must agree bit-for-bit on deterministic
    kernels — the scheduler's differential-testing oracle."""

    @pytest.mark.parametrize("nprocs", [2, 8])
    def test_wildcard_kernel_jobresult_equivalence(self, nprocs):
        coop = run_job(nprocs, _wildcard_kernel, wall_timeout=60,
                       engine="cooperative")
        thr = run_job(nprocs, _wildcard_kernel, wall_timeout=60,
                      engine="threads")
        coop.raise_errors()
        thr.raise_errors()
        assert coop.returns == thr.returns
        assert coop.clocks == thr.clocks          # bitwise virtual times
        assert coop.sent_counts == thr.sent_counts
        assert coop.sent_bytes == thr.sent_bytes


class TestInstantDeadlockDetection:
    def test_all_blocked_detected_without_waiting_for_watchdog(self):
        """Every rank blocked + no predicate true => immediate
        DeadlockError, not a 60s wall-clock watchdog wait."""
        def main(mpi):
            mpi.COMM_WORLD.Recv(np.zeros(1), source=(mpi.rank + 1) % mpi.size,
                                tag=9)

        result = run_job(4, main, wall_timeout=60, engine="cooperative")
        assert result.errors
        assert "deadlock" in result.errors[0][1].lower()
        assert result.wall_seconds < 5.0   # instant, not watchdog-paced

    def test_deadlock_message_names_blocked_ranks(self):
        def main(mpi):
            if mpi.rank == 0:
                mpi.COMM_WORLD.Recv(np.zeros(1), source=1, tag=1)
            return "done"

        result = run_job(2, main, wall_timeout=60, engine="cooperative")
        assert result.errors
        assert "blocked ranks: [0]" in result.errors[0][1]

    def test_partial_block_is_not_deadlock(self):
        """A blocked rank whose peer is still computing must not trip
        the instant detector."""
        def main(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                buf = np.zeros(1)
                comm.Recv(buf, source=1, tag=3)
                return float(buf[0])
            mpi.compute(5.0)
            comm.Send(np.array([42.0]), dest=0, tag=3)
            return 42.0

        result = run_job(2, main, wall_timeout=60, engine="cooperative")
        result.raise_errors()
        assert result.returns == [42.0, 42.0]


class TestSpinFairness:
    def test_test_spin_loop_cannot_starve_sender(self):
        def main(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                buf = np.zeros(2)
                req = comm.Irecv(buf, source=1, tag=5)
                spins = 0
                while True:
                    done, _st = mpi.Test(req)
                    if done:
                        break
                    spins += 1
                    assert spins < 1_000_000, "Test spin starved the sender"
                return float(buf.sum())
            mpi.compute(1e-3)
            comm.Send(np.array([1.0, 2.0]), dest=0, tag=5)
            return 3.0

        result = run_job(2, main, wall_timeout=30, engine="cooperative")
        result.raise_errors()
        assert result.returns == [3.0, 3.0]

    def test_iprobe_spin_loop_cannot_starve_sender(self):
        def main(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                spins = 0
                while True:
                    flag, st = comm.Iprobe(source=mpi.ANY_SOURCE, tag=6)
                    if flag:
                        break
                    spins += 1
                    assert spins < 1_000_000
                buf = np.zeros(1)
                comm.Recv(buf, source=st.source, tag=6)
                return float(buf[0])
            mpi.compute(1e-3)
            comm.Send(np.array([7.0]), dest=0, tag=6)
            return 7.0

        result = run_job(2, main, wall_timeout=30, engine="cooperative")
        result.raise_errors()
        assert result.returns == [7.0, 7.0]

    def test_abort_unwinds_spinning_rank(self):
        """The cooperative analog of the threaded unwind-at-call-entry
        regression: a rank spinning on Test observes a peer's error
        abort through the nb_poll observation point and unwinds."""
        def main(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 1:
                raise ValueError("boom")
            req = comm.Irecv(np.zeros(1), source=1, tag=0)
            while True:
                done, _ = mpi.Test(req)
                assert not done

        result = run_job(2, main, wall_timeout=30, engine="cooperative")
        assert result.errors and result.errors[0][0] == 1
        assert result.wall_seconds < 10.0


class TestSchedulerInternals:
    def test_scheduler_runs_lock_free_mailboxes(self):
        """Cooperative runs bind every mailbox to the scheduler (no
        condition-variable path)."""
        from repro.mpi.engine import Engine

        eng = Engine(3, engine="cooperative")
        eng.run(lambda mpi: mpi.rank)
        assert eng.backend == "cooperative"
        assert eng.scheduler is not None
        assert eng.scheduler.switches > 0
        for mb in eng.mailboxes:
            assert mb._sched is eng.scheduler

    def test_threads_engine_keeps_condition_variables(self):
        from repro.mpi.engine import Engine

        eng = Engine(3, engine="threads")
        eng.run(lambda mpi: mpi.rank)
        assert eng.backend == "threads"
        assert eng.scheduler is None
        for mb in eng.mailboxes:
            assert mb._sched is None
