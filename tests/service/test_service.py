"""The campaign service (DESIGN.md §11).

Golden-run cache correctness — a hit is bitwise-identical to a fresh
execution, every cache-key component change misses, tenant A's cache
is invisible to tenant B — plus queue backpressure, ordered streaming,
tenant-namespaced storage, error paths, and the in-process
reproducibility pin that makes the cache sound: identical jobs run
concurrently on the service's thread pool produce identical canonical
bytes.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service import (
    CampaignService, JobSpec, ResultCache, ServiceError,
    canonical_result_bytes,
)

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

KILL = ({"rank": 1, "frac": 0.5},)


def spec(**overrides) -> JobSpec:
    base = dict(app="ring", nprocs=2, kills=KILL)
    base.update(overrides)
    return JobSpec(**base)


def run(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# JobSpec: validation and cache keys
# ---------------------------------------------------------------------------

class TestJobSpec:
    def test_bad_fields_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(app="no-such-app")
        with pytest.raises(ValueError):
            JobSpec(app="ring", platform="no-such-machine")
        with pytest.raises(ValueError):
            JobSpec(app="ring", storage="floppy")
        with pytest.raises(ValueError):
            JobSpec(app="ring", kind="no-such-kind")
        with pytest.raises(ValueError):
            JobSpec(app="ring", nprocs=0)
        with pytest.raises(ValueError):
            JobSpec(app="ring", interval_frac=0.0)
        with pytest.raises(ValueError):
            JobSpec(app="ring", cells=({"no_such_field": 1},))

    def test_cache_key_normalizes_the_default_engine(self):
        assert spec(engine=None).cache_key() == \
            spec(engine="cooperative").cache_key()

    def test_every_headline_field_changes_the_key(self):
        base = spec()
        variants = [spec(app="heat", kills=()), spec(nprocs=3),
                    spec(seed=7), spec(engine="threads"),
                    spec(storage="wal")]
        keys = {base.cache_key()} | {v.cache_key() for v in variants}
        assert len(keys) == 1 + len(variants)

    def test_config_fields_change_the_digest(self):
        assert spec().cache_key() != spec(interval_frac=0.4).cache_key()
        assert spec().cache_key() != \
            spec(kills=({"rank": 0, "frac": 0.5},)).cache_key()

    def test_specs_round_trip_through_to_dict(self):
        s = spec(cells=({"label": "a", "seed": 1},))
        assert JobSpec(**s.to_dict()) == s

    def test_cell_specs_merge_overrides(self):
        s = spec(cells=({"label": "a", "seed": 1}, {"seed": 2}))
        labelled = s.cell_specs()
        assert [l for l, _ in labelled][0] == "a"
        assert [sub.seed for _, sub in labelled] == [1, 2]


class TestResultCache:
    def test_served_results_are_immutable_copies(self):
        cache = ResultCache()
        cache.put(("k",), [{"a": 1}])
        first = cache.get(("k",))
        first[0]["a"] = 999
        assert cache.get(("k",)) == [{"a": 1}]
        assert cache.hits == 2 and cache.misses == 0


# ---------------------------------------------------------------------------
# Cache correctness through the service
# ---------------------------------------------------------------------------

class TestGoldenRunCache:
    def test_hit_is_bitwise_equal_to_the_fresh_run(self):
        async def go():
            async with CampaignService(workers=2) as svc:
                fresh = await (await svc.submit("alice", spec())).result()
                job = await svc.submit("alice", spec())
                rows = await job.result()
                return fresh, job.cached, rows
        fresh, cached, rows = run(go())
        assert cached is True
        assert canonical_result_bytes(rows) == \
            canonical_result_bytes(fresh)

    def test_any_key_component_change_misses(self):
        variants = [spec(seed=1), spec(nprocs=3), spec(storage="wal"),
                    spec(engine="threads"), spec(interval_frac=0.4)]

        async def go():
            async with CampaignService(workers=2) as svc:
                base = await svc.submit("alice", spec())
                await base.result()
                jobs = [await svc.submit("alice", v) for v in variants]
                for j in jobs:
                    await j.result()
                return [j.cached for j in jobs]
        assert run(go()) == [False] * len(variants)

    def test_tenant_a_cache_invisible_to_tenant_b(self):
        async def go():
            async with CampaignService(workers=2) as svc:
                await (await svc.submit("alice", spec())).result()
                bob = await svc.submit("bob", spec())
                await bob.result()
                alice_again = await svc.submit("alice", spec())
                await alice_again.result()
                return bob.cached, alice_again.cached, svc.stats()
        bob_cached, alice_cached, stats = run(go())
        assert bob_cached is False
        assert alice_cached is True
        assert stats["tenants"]["alice"]["hits"] == 1
        assert stats["tenants"]["bob"]["hits"] == 0

    def test_cache_disabled_always_executes(self):
        async def go():
            async with CampaignService(workers=2, cache=False) as svc:
                await (await svc.submit("alice", spec())).result()
                again = await svc.submit("alice", spec())
                await again.result()
                return again.cached, svc.jobs_executed
        cached, executed = run(go())
        assert cached is False and executed == 2


# ---------------------------------------------------------------------------
# Reproducibility pin: concurrent in-process runs are bitwise equal
# ---------------------------------------------------------------------------

class TestConcurrentReproducibility:
    def test_identical_jobs_race_to_identical_bytes(self):
        async def go():
            async with CampaignService(workers=4, cache=False) as svc:
                jobs = [await svc.submit(f"t{i}", spec())
                        for i in range(4)]
                rows = await asyncio.gather(*[j.result() for j in jobs])
                return [canonical_result_bytes(r) for r in rows]
        blobs = run(go())
        assert len(set(blobs)) == 1


# ---------------------------------------------------------------------------
# Streaming, namespaces, backpressure, errors
# ---------------------------------------------------------------------------

class TestServiceBehavior:
    def test_events_stream_cells_in_order_then_done(self):
        cells = ({"label": "a", "seed": 1}, {"label": "b", "seed": 2})

        async def go():
            async with CampaignService(workers=1) as svc:
                job = await svc.submit("alice", spec(cells=cells))
                return [e async for e in job.events()]
        events = run(go())
        assert [e["type"] for e in events] == ["cell", "cell", "done"]
        assert [e["index"] for e in events[:2]] == [0, 1]
        assert [e["label"] for e in events[:2]] == ["a", "b"]
        assert len(events[-1]["rows"]) == 2

    def test_cached_jobs_stream_the_same_shape(self):
        async def go():
            async with CampaignService(workers=1) as svc:
                await (await svc.submit("alice", spec())).result()
                job = await svc.submit("alice", spec())
                return [e async for e in job.events()]
        events = run(go())
        assert [e["type"] for e in events] == ["cell", "done"]
        assert events[0]["cached"] is True

    def test_job_bytes_confined_to_the_tenant_namespace(self):
        async def go():
            async with CampaignService(workers=1) as svc:
                await (await svc.submit("alice", spec())).result()
                await (await svc.submit("bob",
                                        spec(storage="wal"))).result()
                return svc.backend.list("")
        paths = run(go())
        assert paths
        assert all(p.startswith(("tenants/alice/", "tenants/bob/"))
                   for p in paths)
        assert any(p.startswith("tenants/alice/jobs/") for p in paths)
        assert any(p.startswith("tenants/bob/jobs/") for p in paths)

    def test_submit_backpressure_when_the_queue_is_full(self):
        async def go():
            svc = CampaignService(queue_limit=2, workers=1)
            await svc.start()
            # freeze the drain side so the bounded queue actually fills
            for t in svc._tasks:
                t.cancel()
            await asyncio.gather(*svc._tasks, return_exceptions=True)
            svc._tasks = []
            await svc.submit("alice", spec())
            await svc.submit("alice", spec())
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(svc.submit("alice", spec()), 0.2)
            await svc.close()
        run(go())

    def test_bad_tenant_names_rejected_at_submit(self):
        async def go():
            async with CampaignService(workers=1) as svc:
                for bad in ("", "..", "a/b"):
                    with pytest.raises(ValueError):
                        await svc.submit(bad, spec())
        run(go())

    def test_submit_before_start_raises(self):
        async def go():
            svc = CampaignService()
            with pytest.raises(RuntimeError):
                await svc.submit("alice", spec())
        run(go())

    def test_failing_job_raises_service_error(self):
        # the override field name is legal, its value is not: the spec
        # passes submit-time validation and dies at execution
        bad = spec(cells=({"nprocs": 0},))

        async def go():
            async with CampaignService(workers=1) as svc:
                job = await svc.submit("alice", bad)
                events = [e async for e in job.events()]
                with pytest.raises(ServiceError):
                    await job.result()
                return events, job.ok
        events, ok = run(go())
        assert events[-1]["type"] == "error"
        assert ok is False


# ---------------------------------------------------------------------------
# The load generator end to end (small)
# ---------------------------------------------------------------------------

class TestLoadgen:
    def test_small_loadgen_passes_every_gate(self):
        from repro.harness.loadgen import run_loadgen
        report = run_loadgen(tenants=2, jobs=8, duplicate_frac=0.25,
                             queue_limit=4, workers=2, seed=0)
        assert report["ok"], report["gates"]
        assert report["submissions"] == 8
        assert report["cache"]["duplicate_misses"] == 0
        assert report["cache"]["duplicate_mismatches"] == 0

    def test_percentile_nearest_rank(self):
        from repro.harness.loadgen import percentile
        vals = [1.0, 2.0, 3.0, 4.0]
        assert percentile(vals, 50.0) == 2.0
        assert percentile(vals, 99.0) == 4.0
        assert percentile([], 99.0) == 0.0
