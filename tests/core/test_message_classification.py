"""Figure 2: late / intra-epoch / early messages in a live protocol run.

Three ranks (P, Q, R as in the paper's figure) exchange messages around a
recovery line staggered by unequal compute, forcing each message class to
occur, and the registries are inspected through the per-rank stats.
"""

import numpy as np

from repro.core import C3Config, run_c3, run_fault_tolerant, run_original
from repro.mpi import FaultPlan, FaultSpec
from repro.storage import InMemoryStorage


def staggered_app(ctx):
    """P checkpoints early, R checkpoints late: P->R late, R->P early."""
    comm = ctx.comm
    rank, size = ctx.rank, ctx.size
    if ctx.first_time("setup"):
        ctx.state.acc = 0.0
        ctx.done("setup")
    for it in ctx.range("it", 10):
        ctx.checkpoint()
        # rank 0 runs fast, rank 2 runs slow: their pragmas drift apart
        ctx.compute(1e-4 * (1 + rank * 4))
        right = (rank + 1) % size
        left = (rank - 1) % size
        comm.Send(np.array([float(rank + it)]), dest=right, tag=1)
        buf = np.zeros(1)
        comm.Recv(buf, source=left, tag=1)
        ctx.state.acc += float(buf[0])
    return round(ctx.state.acc, 9)


def test_all_three_classes_occur_and_run_is_correct():
    ref = run_original(staggered_app, 3)
    ref.raise_errors()

    storage = InMemoryStorage()
    result, stats = run_c3(staggered_app, 3, storage=storage,
                           config=C3Config(checkpoint_interval=3e-4))
    result.raise_errors()
    assert result.returns == ref.returns

    total_late = sum(s.late_logged for s in stats)
    total_early = sum(s.early_recorded for s in stats)
    committed = min(s.checkpoints_committed for s in stats)
    assert committed >= 1
    # with staggered pragmas the ring traffic must cross recovery lines in
    # both directions
    assert total_late > 0, "no late messages were ever logged"
    assert total_early > 0, "no early messages were ever recorded"


def test_recovery_with_late_and_early_messages():
    """The Section 2.3 mechanics end-to-end: replay from the log and
    suppress re-sends, after a mid-logging failure."""
    ref = run_original(staggered_app, 3)
    ref.raise_errors()
    T = ref.virtual_time

    storage = InMemoryStorage()
    res = run_fault_tolerant(
        staggered_app, 3, storage=storage,
        config=C3Config(checkpoint_interval=T * 0.18),
        fault_plan=FaultPlan([FaultSpec(rank=1, at_time=T * 0.62)]))
    assert res.restarts == 1
    assert res.returns == ref.returns
    st_all = [s for s in res.stats if s]
    replayed = sum(s.replayed_from_log for s in st_all)
    suppressed = sum(s.suppressed_sends for s in st_all)
    # at least one of the two recovery mechanisms must have fired for a
    # staggered ring killed mid-run
    assert replayed + suppressed > 0


def test_message_never_crosses_two_lines():
    """The protocol invariant behind the 3-bit piggyback: decode raises if
    a message spans more than one recovery line, so a clean run proves the
    invariant held throughout."""
    storage = InMemoryStorage()
    result, stats = run_c3(staggered_app, 3, storage=storage,
                           config=C3Config(checkpoint_interval=2e-4))
    result.raise_errors()  # a violation would raise ProtocolError in-run
    assert min(s.checkpoints_committed for s in stats) >= 1
