"""Overlapped checkpoint write-back: staging, crash-consistent commits,
torn-line fallback, and recovery-line garbage collection."""

import numpy as np
import pytest

from repro.core import C3Config, run_c3, run_fault_tolerant
from repro.core.ccc import resume_from_manifest, run_original
from repro.mpi import FaultPlan, FaultSpec
from repro.mpi.timemodel import MACHINES, TESTING
from repro.storage import (
    DiskStorage, InMemoryStorage, committed_map, last_committed_global,
    section_path, validate_line,
)


def looping_app(ctx, niter=12, work=1e-4):
    comm = ctx.comm
    r, s = ctx.rank, ctx.size
    if ctx.first_time("setup"):
        ctx.state.x = np.zeros(4)
        ctx.done("setup")
    for it in ctx.range("i", niter):
        ctx.checkpoint()
        comm.Send(ctx.state.x + it, dest=(r + 1) % s, tag=1)
        buf = np.zeros(4)
        comm.Recv(buf, source=(r - 1) % s, tag=1)
        ctx.state.x = buf + 1
        ctx.compute(work)
    return float(ctx.state.x.sum())


# ---------------------------------------------------------------------------
# Staging and commit semantics
# ---------------------------------------------------------------------------

def test_overlapped_run_commits_all_lines(storage):
    result, stats = run_c3(looping_app, 3, storage=storage,
                           config=C3Config(checkpoint_interval=3e-4))
    result.raise_errors()
    n = stats[0].checkpoints_committed
    assert n >= 2
    assert stats[0].overlapped_commits == n
    assert last_committed_global(storage, 3, validate=True) == n
    for rank in range(3):
        assert validate_line(storage, n, rank, deep=True)


def test_overlap_cheaper_than_inline_write():
    """The whole point: staging returns control immediately, so the
    checkpointed run's makespan drops below the in-line write path on a
    platform with a real disk."""
    machine = MACHINES["lemieux"]
    config = dict(checkpoint_interval=2e-3, max_checkpoints=2)
    app = lambda ctx: looping_app(ctx, niter=16, work=5e-4)  # noqa: E731
    inline, istats = run_c3(app, 2, machine=machine,
                            storage=InMemoryStorage(),
                            config=C3Config(overlap=False, **config))
    inline.raise_errors()
    ovl, ostats = run_c3(app, 2, machine=machine, storage=InMemoryStorage(),
                         config=C3Config(overlap=True, **config))
    ovl.raise_errors()
    assert istats[0].checkpoints_committed >= 1
    assert ostats[0].checkpoints_committed == istats[0].checkpoints_committed
    assert ovl.virtual_time < inline.virtual_time
    # identical results either way
    assert ovl.returns == inline.returns


def test_commit_marker_deferred_to_drain_completion():
    """On a slow-disk machine the COMMIT instant (durability) trails the
    protocol commit by at least the modelled drain time."""
    machine = TESTING.with_overrides(disk_bandwidth=1e5, disk_latency=1e-3)
    storage = InMemoryStorage()
    result, stats = run_c3(looping_app, 2, machine=machine, storage=storage,
                           config=C3Config(checkpoint_interval=3e-4,
                                           max_checkpoints=1))
    result.raise_errors()
    st = stats[0]
    assert st.checkpoints_committed == 1
    # durability includes the (queued) drain of app state + log sections
    assert st.last_commit_time >= 1e-3
    assert last_committed_global(storage, 2) == 1


def test_overlap_recovers_bitwise_after_kill(storage):
    ref = run_fault_tolerant(looping_app, 3, storage=InMemoryStorage(),
                             config=C3Config(checkpoint_interval=2.5e-4))
    res = run_fault_tolerant(
        looping_app, 3, storage=storage,
        config=C3Config(checkpoint_interval=2.5e-4),
        fault_plan=FaultPlan([FaultSpec(rank=1, at_time=8e-4)]))
    assert res.restarts == 1
    assert res.returns == ref.returns


# ---------------------------------------------------------------------------
# Torn lines: kill mid-drain / mid-commit must fall back
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kill", [dict(in_drain=2), dict(at_commit=2)])
def test_kill_during_line2_falls_back_to_line1(kill):
    """A rank killed while line 2 drains (or right before its marker is
    written) leaves a torn line; recovery must restore line 1 and still
    produce the failure-free answer bitwise."""
    machine = MACHINES["lemieux"]
    app = lambda ctx: looping_app(ctx, niter=16, work=5e-4)  # noqa: E731
    ref = run_fault_tolerant(app, 2, machine=machine,
                             storage=InMemoryStorage(),
                             config=C3Config(checkpoint_interval=2e-3))
    storage = InMemoryStorage()
    res = run_fault_tolerant(
        app, 2, machine=machine, storage=storage,
        config=C3Config(checkpoint_interval=2e-3),
        fault_plan=FaultPlan([FaultSpec(rank=1, **kill)]))
    assert res.restarts == 1
    assert res.returns == ref.returns
    # the fallback really was the previous line
    assert res.stats[0].restored_version == 1


def test_restore_rejects_truncated_section_and_falls_back(tmp_path):
    """Crash-consistency on real files: truncate a section of the newest
    committed line on disk; the validated restore scan must skip it and
    restart from the previous line."""
    storage = DiskStorage(str(tmp_path / "store"))
    result, stats = run_c3(looping_app, 2, storage=storage,
                           config=C3Config(checkpoint_interval=3e-4,
                                           gc_lines=False))
    result.raise_errors()
    golden = result.returns
    n = stats[0].checkpoints_committed
    assert n >= 2
    # tear the newest line under rank 1: marker present, section truncated
    path = section_path(n, 1, "app")
    storage.write(path, storage.read(path)[:-3])
    assert not validate_line(storage, n, 1)
    assert last_committed_global(storage, 2, validate=True) == n - 1

    restarted, rstats = resume_from_manifest(
        looping_app, 2, storage, config=C3Config(checkpoint_interval=3e-4,
                                                 gc_lines=False))
    restarted.raise_errors()
    assert rstats[0].restored_version == n - 1
    assert restarted.returns == golden


# ---------------------------------------------------------------------------
# Recovery-line garbage collection
# ---------------------------------------------------------------------------

def test_gc_retains_at_most_two_lines(storage):
    result, stats = run_c3(looping_app, 3, storage=storage,
                           config=C3Config(checkpoint_interval=2.5e-4))
    result.raise_errors()
    n = stats[0].checkpoints_committed
    assert n >= 3
    cmap = committed_map(storage)
    for rank in range(3):
        assert len(cmap[rank]) <= 2
        assert cmap[rank][-1] == n
    assert sum(s.gc_deleted_lines for s in stats if s) > 0
    # the newest line is still fully restorable
    assert last_committed_global(storage, 3, validate=True) == n


def test_gc_ablation_switch_retains_history(storage):
    result, stats = run_c3(looping_app, 3, storage=storage,
                           config=C3Config(checkpoint_interval=2.5e-4,
                                           gc_lines=False))
    result.raise_errors()
    n = stats[0].checkpoints_committed
    cmap = committed_map(storage)
    for rank in range(3):
        assert cmap[rank] == list(range(1, n + 1))
    assert all(s.gc_deleted_lines == 0 for s in stats if s)


def test_gc_never_deletes_restore_target(storage):
    """Across a kill/restart sequence the line recovery needs is always
    on storage — GC's floor only rises with global durable commits."""
    plan = FaultPlan([FaultSpec(rank=0, at_time=6e-4),
                      FaultSpec(rank=1, at_time=1.1e-3)])
    ref = run_fault_tolerant(looping_app, 3, storage=InMemoryStorage(),
                             config=C3Config(checkpoint_interval=2.5e-4))
    res = run_fault_tolerant(looping_app, 3, storage=storage,
                             config=C3Config(checkpoint_interval=2.5e-4),
                             fault_plan=plan)
    assert res.restarts == 2
    assert res.returns == ref.returns
    # steady state after the final execution
    cmap = committed_map(storage)
    assert all(len(v) <= 2 for v in cmap.values())


def test_gc_respects_incremental_chain(storage):
    """With incremental checkpointing, GC must never break the decode
    chain: everything back to the newest globally-committed full save
    stays on storage."""

    def sparse_app(ctx):
        comm = ctx.comm
        r, s = ctx.rank, ctx.size
        if ctx.first_time("setup"):
            ctx.state.big = np.zeros(2048)
            ctx.state.acc = 0.0
            ctx.done("setup")
        for it in ctx.range("i", 14):
            ctx.checkpoint()
            ctx.state.big[it] = float(it + r)
            comm.Send(np.array([float(it)]), dest=(r + 1) % s, tag=1)
            buf = np.zeros(1)
            comm.Recv(buf, source=(r - 1) % s, tag=1)
            ctx.state.acc += float(buf[0])
            ctx.compute(1e-4)
        return round(float(ctx.state.big.sum() + ctx.state.acc), 9)

    ref = run_original(sparse_app, 2)
    ref.raise_errors()
    T = ref.virtual_time
    res = run_fault_tolerant(
        sparse_app, 2, storage=storage,
        config=C3Config(checkpoint_interval=T * 0.1, incremental=True,
                        incremental_full_interval=3),
        fault_plan=FaultPlan([FaultSpec(rank=0, at_time=T * 0.8)]))
    assert res.restarts == 1
    assert res.returns == ref.returns
    assert res.stats[0].restored_version >= 2
    # GC ran, but every line of the live chain survived (the restore
    # above would have failed otherwise); retention is bounded by the
    # full-save interval, not unbounded history
    cmap = committed_map(storage)
    assert all(len(v) <= 4 for v in cmap.values())
