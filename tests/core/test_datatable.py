"""Section 4.2: the datatype handle table."""

import numpy as np
import pytest

from repro.core.datatable import C3DatatypeHandle, DatatypeTable
from repro.core.modes import ProtocolError
from repro.mpi import datatypes as dt


@pytest.fixture
def table():
    return DatatypeTable()


class TestConstruction:
    def test_contiguous(self, table):
        h = table.create_contiguous(4, dt.DOUBLE)
        h.Commit()
        obj = table.resolve(h)
        assert obj.size == 32

    def test_vector_over_named(self, table):
        h = table.create_vector(2, 1, 3, dt.INT).Commit()
        assert table.resolve(h).size == 8

    def test_hierarchy(self, table):
        inner = table.create_contiguous(2, dt.DOUBLE)
        outer = table.create_vector(3, 1, 2, inner).Commit()
        obj = table.resolve(outer)
        assert obj.size == 3 * 16

    def test_struct(self, table):
        h = table.create_struct([1, 1], [0, 8], [dt.INT, dt.DOUBLE]).Commit()
        assert table.resolve(h).size == 12

    def test_resolve_named_passthrough(self, table):
        assert table.resolve(dt.DOUBLE) is dt.DOUBLE

    def test_unknown_handle(self, table):
        with pytest.raises(ProtocolError):
            table.resolve(99)


class TestLifecycle:
    def test_free_releases_runtime_object(self, table):
        h = table.create_contiguous(2, dt.DOUBLE).Commit()
        h.Free()
        with pytest.raises(ProtocolError):
            table.resolve(h)

    def test_double_free(self, table):
        h = table.create_contiguous(2, dt.DOUBLE)
        h.Free()
        with pytest.raises(ProtocolError):
            table.free(h.handle)

    def test_entry_kept_while_dependents_live(self, table):
        """Table entries survive their Free until all dependents are gone
        (needed to reconstruct intermediate types on restore)."""
        inner = table.create_contiguous(2, dt.DOUBLE)
        outer = table.create_vector(2, 1, 2, inner).Commit()
        inner.Free()
        assert len(table) == 2  # inner entry retained
        outer.Free()
        assert len(table) == 0  # both collected

    def test_independent_entry_collected_immediately(self, table):
        h = table.create_contiguous(2, dt.DOUBLE)
        h.Free()
        assert len(table) == 0


class TestRestore:
    def test_roundtrip_preserves_pack_semantics(self, table):
        inner = table.create_contiguous(2, dt.DOUBLE)
        outer = table.create_vector(2, 1, 2, inner).Commit()
        a = np.arange(8.0)
        payload_before = table.resolve(outer).pack(a, 1)

        wire = table.to_wire()
        restored = DatatypeTable()
        restored.restore_wire(wire)
        payload_after = restored.resolve(outer.handle).pack(a, 1)
        assert payload_before == payload_after

    def test_restore_recreates_freed_intermediates(self, table):
        inner = table.create_contiguous(3, dt.INT)
        outer = table.create_vector(2, 1, 3, inner).Commit()
        inner.Free()
        wire = table.to_wire()

        restored = DatatypeTable()
        restored.restore_wire(wire)
        # the outer type still packs correctly through the freed child
        a = np.arange(18, dtype=np.int32)
        payload = restored.resolve(outer.handle).pack(a, 1)
        assert len(payload) == table.resolve(outer).size

    def test_restore_preserves_ids(self, table):
        h1 = table.create_contiguous(2, dt.DOUBLE)
        h2 = table.create_vector(1, 1, 1, dt.INT)
        wire = table.to_wire()
        restored = DatatypeTable()
        restored.restore_wire(wire)
        h3 = restored.create_contiguous(9, dt.BYTE)
        assert h3.handle == max(h1.handle, h2.handle) + 1

    def test_commit_state_restored(self, table):
        committed = table.create_contiguous(2, dt.DOUBLE).Commit()
        uncommitted = table.create_contiguous(3, dt.DOUBLE)
        restored = DatatypeTable()
        restored.restore_wire(table.to_wire())
        restored.resolve(committed.handle).pack(np.zeros(2), 1)
        with pytest.raises(Exception):
            restored.resolve(uncommitted.handle).pack(np.zeros(3), 1)
