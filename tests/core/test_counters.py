"""Sent/received counter bookkeeping (Figure 5 "Prepare counters")."""

import pytest
from hypothesis import given, strategies as st

from repro.core.counters import CounterSet
from repro.core.modes import ProtocolError


def test_send_and_receive_counting():
    c = CounterSet(3, rank=0)
    c.on_send(1)
    c.on_send(1)
    c.on_intra_received(2)
    assert c.sent_count == [0, 2, 0]
    assert c.received_count == [0, 0, 1]


def test_start_checkpoint_shuffle():
    c = CounterSet(3, rank=0)
    c.on_send(1)
    c.on_intra_received(1)
    c.on_intra_received(2)
    c.on_early_received(2)
    announced = c.on_start_checkpoint()
    assert announced == [0, 1, 0]
    # intra receipts become the late baseline
    assert c.late_received == [0, 1, 1]
    # early receipts become the new epoch's intra baseline
    assert c.received_count == [0, 0, 1]
    assert c.early_received == [0, 0, 0]
    assert c.sent_count == [0, 0, 0]


def test_late_drained_needs_all_announcements():
    c = CounterSet(3, rank=0)
    c.on_start_checkpoint()
    assert not c.late_drained()      # nothing announced yet
    c.on_control_received(1, 0)
    assert not c.late_drained()      # rank 2 still silent
    c.on_control_received(2, 0)
    assert c.late_drained()


def test_late_drained_counts_against_announcements():
    c = CounterSet(2, rank=0)
    c.on_intra_received(1)           # received before my checkpoint
    c.on_start_checkpoint()
    c.on_control_received(1, 3)      # peer sent 3 messages in the old epoch
    assert not c.late_drained()
    c.on_late_received(1)
    c.on_late_received(1)
    assert c.late_drained()          # 1 (baseline) + 2 (late) == 3


def test_too_many_late_messages_is_an_error():
    c = CounterSet(2, rank=0)
    c.on_start_checkpoint()
    c.on_control_received(1, 1)
    c.on_late_received(1)
    with pytest.raises(ProtocolError):
        c.on_late_received(1)


def test_duplicate_announcement_rejected():
    c = CounterSet(2, rank=0)
    c.on_start_checkpoint()
    c.on_control_received(1, 0)
    with pytest.raises(ProtocolError):
        c.on_control_received(1, 0)


def test_single_process_always_drained():
    c = CounterSet(1, rank=0)
    c.on_start_checkpoint()
    assert c.late_drained()
    assert not c.late_expected()


def test_wire_roundtrip():
    c = CounterSet(2, rank=0)
    c.on_send(1)
    c.on_early_received(1)
    c.on_start_checkpoint()
    wire = c.to_wire()
    c2 = CounterSet(2, rank=0)
    c2.restore_wire(wire)
    assert c2.received_count == c.received_count
    assert c2.sent_count == c.sent_count
    assert c2.expected_late == [None, None]


@given(sent=st.lists(st.integers(0, 5), min_size=2, max_size=2),
       pre=st.integers(0, 5), post=st.integers(0, 5))
def test_conservation_property(sent, pre, post):
    """Property: late accounting balances iff baseline + late receipts
    equals the announced total (message conservation across the line)."""
    total = pre + post
    c = CounterSet(2, rank=0)
    for _ in range(pre):
        c.on_intra_received(1)
    c.on_start_checkpoint()
    c.on_control_received(1, total)
    for _ in range(post):
        c.on_late_received(1)
    assert c.late_drained()
