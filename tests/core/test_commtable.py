"""Section 4.4: recorded communicators replayed across restarts."""

import numpy as np
import pytest

from repro.core import C3Config, cached_comm, run_c3, run_fault_tolerant, run_original
from repro.mpi import FaultPlan, FaultSpec, SUM
from repro.storage import InMemoryStorage


def subcomm_app(ctx):
    """Uses a dup, a split, and a cartesian grid across recovery lines."""
    comm = ctx.comm
    r, s = ctx.rank, ctx.size
    half = cached_comm(ctx, "half",
                       lambda: comm.Split(color=r % 2, key=r))
    ring = cached_comm(ctx, "ring",
                       lambda: comm.Cart_create((s,), (True,)))
    if ctx.first_time("setup"):
        ctx.state.acc = 0.0
        ctx.done("setup")
    for it in ctx.range("i", 10):
        ctx.checkpoint()
        out = np.zeros(1)
        half.Allreduce(np.array([float(r + it)]), out, SUM)
        ctx.state.acc += float(out[0])
        left, right = ring.Shift(0, 1)
        buf = np.zeros(1)
        ring.Sendrecv(np.array([float(r)]), right, 2, buf, left, 2)
        ctx.state.acc += float(buf[0])
        ctx.compute(1e-4)
    return round(ctx.state.acc, 9)


def test_subcommunicators_work_under_c3():
    ref = run_original(subcomm_app, 4)
    ref.raise_errors()
    result, stats = run_c3(subcomm_app, 4, storage=InMemoryStorage(),
                           config=C3Config(checkpoint_interval=4e-4))
    result.raise_errors()
    assert result.returns == ref.returns
    assert min(s.checkpoints_committed for s in stats) >= 1


@pytest.mark.parametrize("frac", [0.3, 0.7])
def test_subcommunicators_recover(frac):
    """After a restart, recorded Dup/Split/Cart creations are replayed and
    the application reconstructs identical communicator handles."""
    ref = run_original(subcomm_app, 4)
    ref.raise_errors()
    T = ref.virtual_time
    res = run_fault_tolerant(
        subcomm_app, 4, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=T * 0.2),
        fault_plan=FaultPlan([FaultSpec(rank=3, at_time=T * frac)]))
    assert res.restarts == 1
    assert res.returns == ref.returns


def test_commtable_unit_roundtrip():
    from repro.core.commtable import CommTable
    from repro.mpi import run_job

    def main(mpi):
        table = CommTable()
        table.add_world(mpi.COMM_WORLD)
        dup = table.record_dup(table.get(0))
        split = table.record_split(table.get(0), color=mpi.rank % 2,
                                   key=mpi.rank)
        cart = table.record_cart(table.get(0), (mpi.size,), (True,))
        wire = table.to_wire()

        # a restart sees a FRESH world communicator whose creation-sequence
        # counter is zero (the process restarted); model that here
        from repro.mpi.communicator import Communicator, Group
        fresh_world = Communicator(
            mpi._ctx, Group(range(mpi.size)), mpi._ctx.engine.WORLD_CTX,
            mpi._ctx.engine.WORLD_SHADOW, name="MPI_COMM_WORLD")
        restored = CommTable()
        restored.restore_wire(wire, fresh_world)
        assert len(restored) == len(table)
        # same context ids reproduced for every entry
        for key in (dup.key, split.key, cart.key):
            assert (restored.get(key).raw.context_id
                    == table.get(key).raw.context_id)
        return True

    result = run_job(4, main, wall_timeout=30)
    result.raise_errors()
    assert all(result.returns)


def test_restore_pins_context_ids_under_allocation_drift():
    """The recovery-campaign deadlock regression: a restarted job whose
    engine hands out context ids in a different order must still rebuild
    every recorded communicator with its ORIGINAL (context, shadow) ids —
    the late/early registries persist raw context ids, so any drift makes
    replay and suppression silently miss and the restart deadlocks."""
    from repro.core.commtable import CommTable
    from repro.mpi import run_job

    def main(mpi):
        table = CommTable()
        table.add_world(mpi.COMM_WORLD)
        dup = table.record_dup(table.get(0))
        cart = table.record_cart(table.get(0), (mpi.size,), (True,))
        wire = table.to_wire()
        assert wire["entries"][1]["ids"] == (dup.raw.context_id,
                                             dup.raw.shadow_id)

        # Model a restarted engine whose allocation order drifted: burn a
        # few context ids on keys the original run never saw, then replay.
        mpi._ctx.engine.context_for(("drift", mpi.rank % 1, 0))
        mpi._ctx.engine.context_for(("drift", mpi.rank % 1, 1))
        from repro.mpi.communicator import Communicator, Group
        fresh_world = Communicator(
            mpi._ctx, Group(range(mpi.size)), mpi._ctx.engine.WORLD_CTX,
            mpi._ctx.engine.WORLD_SHADOW, name="MPI_COMM_WORLD")
        # the fresh world's creation keys must not collide with the
        # original run's (same key -> registry short-circuits the force);
        # a restarted process re-derives the same keys, so skew them here
        fresh_world._creation_seq = 50
        restored = CommTable()
        restored.restore_wire(wire, fresh_world)
        for key in (dup.key, cart.key):
            assert (restored.get(key).raw.context_id
                    == table.get(key).raw.context_id)
            assert (restored.get(key).raw.shadow_id
                    == table.get(key).raw.shadow_id)
        # and fresh creations after the restore never collide
        newer = restored.record_dup(restored.get(0))
        taken = {restored.get(k).raw.context_id for k in (0, dup.key, cart.key)}
        assert newer.raw.context_id not in taken
        return True

    result = run_job(4, main, wall_timeout=30)
    result.raise_errors()
    assert all(result.returns)


def test_freed_comm_recorded_and_replayed():
    def app(ctx):
        comm = ctx.comm
        if ctx.first_time("setup"):
            tmp = comm.Dup()
            tmp.Free()
            ctx.state.ok = 1.0
            ctx.done("setup")
        for it in ctx.range("i", 6):
            ctx.checkpoint()
            ctx.compute(2e-4)
        return float(ctx.state.ok)

    res = run_fault_tolerant(
        app, 2, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=3e-4),
        fault_plan=FaultPlan([FaultSpec(rank=0, at_time=7e-4)]))
    assert res.restarts == 1
    assert res.returns == [1.0, 1.0]
