"""Control plane: Checkpoint-Initiated messages and early-registry exchange."""

import numpy as np
import pytest

from repro.core.control import ControlPlane, TAG_CKPT_INITIATED
from repro.core.modes import ProtocolError
from repro.testutil import run


def test_announce_and_poll():
    def main(mpi):
        cp = ControlPlane(mpi.COMM_WORLD.Dup(), mpi.rank, mpi.size)
        got = []
        if mpi.rank == 0:
            cp.announce_checkpoint(1, [0, 5, 7])
            return None
        # ranks 1 and 2 receive their own count
        while not got:
            cp.poll(lambda line, src, count: got.append((line, src, count)))
        return got[0]

    result = run(3, main, wall_timeout=30)
    assert result.returns[1] == (1, 0, 5)
    assert result.returns[2] == (1, 0, 7)


def test_all_started_tracking():
    def main(mpi):
        cp = ControlPlane(mpi.COMM_WORLD.Dup(), mpi.rank, mpi.size)
        cp.announce_checkpoint(1, [0] * mpi.size)
        while not cp.all_started(1):
            cp.poll(lambda *a: None)
        assert cp.any_started(1)
        cp.forget_line(1)
        assert not cp.any_started(1)
        return True

    assert all(run(3, main, wall_timeout=30).returns)


def test_duplicate_announcement_raises():
    def main(mpi):
        cp = ControlPlane(mpi.COMM_WORLD.Dup(), mpi.rank, mpi.size)
        if mpi.rank == 0:
            # illegally announce the same line twice
            cp.announce_checkpoint(1, [0, 0])
            cp.comm.Send(np.array([1, 0], dtype=np.int64), dest=1,
                         tag=TAG_CKPT_INITIATED)
            return None
        seen = 0
        try:
            while True:
                seen += cp.poll(lambda *a: None)
        except ProtocolError:
            return "raised"

    result = run(2, main, wall_timeout=30)
    assert result.returns[1] == "raised"


def test_early_registry_exchange_routing():
    def main(mpi):
        cp = ControlPlane(mpi.COMM_WORLD.Dup(), mpi.rank, mpi.size)
        # rank 0 recorded early messages from rank 1 (tag 5) and rank 2
        # (tags 6 and 6); others recorded none
        if mpi.rank == 0:
            by_sender = {1: [(5, 0)], 2: [(6, 0), (6, 0)]}
        else:
            by_sender = {}
        return sorted(cp.exchange_early_registries(by_sender))

    result = run(3, main, wall_timeout=30)
    assert result.returns[0] == []
    assert result.returns[1] == [(0, 5, 0)]          # suppress send to rank 0
    assert result.returns[2] == [(0, 6, 0), (0, 6, 0)]


def test_exchange_with_no_entries_everywhere():
    def main(mpi):
        cp = ControlPlane(mpi.COMM_WORLD.Dup(), mpi.rank, mpi.size)
        return cp.exchange_early_registries({})

    result = run(4, main, wall_timeout=30)
    assert all(r == [] for r in result.returns)
