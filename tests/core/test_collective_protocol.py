"""Section 4.3: collectives under the protocol (Figure 7).

Per-stream classification over native transport, emulation during
recovery, reductions via the Gather transform, and the result-logging
option.
"""

import numpy as np
import pytest

from repro.core import C3Config, run_c3, run_fault_tolerant, run_original
from repro.mpi import FaultPlan, FaultSpec, SUM
from repro.mpi.ops import Op
from repro.storage import InMemoryStorage


def collective_mix_app(ctx):
    comm = ctx.comm
    r, s = ctx.rank, ctx.size
    if ctx.first_time("setup"):
        ctx.state.acc = 0.0
        ctx.done("setup")
    for it in ctx.range("i", 10):
        ctx.checkpoint()
        ctx.compute(1e-4 * (1 + r))      # staggered pragmas
        # bcast from a rotating root
        buf = (np.arange(3.0) + it if r == it % s else np.zeros(3))
        comm.Bcast(buf, root=it % s)
        # gather to rank 0
        gathered = np.zeros((s, 1)) if r == 0 else None
        comm.Gather(np.array([float(r + it)]), gathered, root=0)
        # allreduce
        out = np.zeros(1)
        comm.Allreduce(np.array([buf.sum()]), out, SUM)
        ctx.state.acc += float(out[0])
        if r == 0:
            ctx.state.acc += float(gathered.sum())
        # alltoall
        rb = np.zeros(s)
        comm.Alltoall(np.full(s, float(r)), rb)
        ctx.state.acc += float(rb.sum())
        comm.Barrier()
    return round(ctx.state.acc, 9)


def test_collectives_correct_under_c3():
    ref = run_original(collective_mix_app, 4)
    ref.raise_errors()
    result, stats = run_c3(collective_mix_app, 4, storage=InMemoryStorage(),
                           config=C3Config(checkpoint_interval=8e-4))
    result.raise_errors()
    assert result.returns == ref.returns
    assert min(s.checkpoints_committed for s in stats) >= 1
    assert sum(s.collectives_native for s in stats) > 0


@pytest.mark.parametrize("frac", [0.35, 0.7])
def test_collectives_recover(frac):
    ref = run_original(collective_mix_app, 4)
    ref.raise_errors()
    T = ref.virtual_time
    res = run_fault_tolerant(
        collective_mix_app, 4, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=T * 0.18),
        fault_plan=FaultPlan([FaultSpec(rank=2, at_time=T * frac)]))
    assert res.restarts == 1
    assert res.returns == ref.returns
    # the recovered run must have used point-to-point emulation
    assert sum(s.collectives_emulated for s in res.stats if s) > 0


def test_emulation_matches_native_semantics():
    """Forced emulation (the ablation flag) must give identical results."""
    ref = run_original(collective_mix_app, 4)
    ref.raise_errors()
    result, _ = run_c3(collective_mix_app, 4, storage=InMemoryStorage(),
                       config=C3Config(emulate_collectives=True))
    result.raise_errors()
    assert result.returns == ref.returns


def test_scan_under_protocol():
    def app(ctx):
        comm = ctx.comm
        out = np.zeros(1)
        for it in ctx.range("i", 6):
            ctx.checkpoint()
            comm.Scan(np.array([float(ctx.rank + 1)]), out, SUM)
        return out[0]

    result, _ = run_c3(app, 4, storage=InMemoryStorage(), config=C3Config())
    result.raise_errors()
    assert result.returns == [1.0, 3.0, 6.0, 10.0]


def test_reduce_gather_transform_non_commutative():
    """The Reduce->Gather transform must fold in rank order so that even
    non-commutative user ops are exact (the reason the transform exists)."""
    def app(ctx):
        comm = ctx.comm
        op = Op.create(lambda a, b: a * 10 + b, commute=False)
        out = np.zeros(1)
        for it in ctx.range("i", 3):
            ctx.checkpoint()
            comm.Reduce(np.array([float(ctx.rank + 1)]), out, op, root=0)
        return out[0] if ctx.rank == 0 else None

    result, _ = run_c3(app, 4, storage=InMemoryStorage(), config=C3Config())
    result.raise_errors()
    assert result.returns[0] == 1234.0


def test_result_logging_option():
    """The paper's Allreduce optimization: results logged during the
    checkpointing period, replayed on recovery.

    The optimization is only consistent when the logging windows of the
    participants cover the same call indices (DESIGN.md section 7.5
    derives the counter-example; it is why stream-based reductions are the
    default).  Replay across a failure is therefore exercised on a
    uniprocessor run (trivially aligned windows); the multi-rank case
    checks the logging mechanics and failure-free equivalence.
    """
    def app(ctx):
        comm = ctx.comm
        if ctx.first_time("setup"):
            ctx.state.acc = 0.0
            ctx.done("setup")
        for it in ctx.range("i", 12):
            ctx.checkpoint()
            ctx.compute(1e-4)
            out = np.zeros(1)
            comm.Allreduce(np.array([float(ctx.rank + it)]), out, SUM)
            ctx.state.acc += float(out[0])
        return ctx.state.acc

    # 1) uniprocessor: log + replay across a real failure
    ref1 = run_original(app, 1)
    ref1.raise_errors()
    T1 = ref1.virtual_time
    res1 = run_fault_tolerant(
        app, 1, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=T1 * 0.2,
                        log_reduction_results=True),
        fault_plan=FaultPlan([FaultSpec(rank=0, at_time=T1 * 0.7)]),
        wall_timeout=60)
    assert res1.restarts == 1
    assert res1.returns == ref1.returns

    # 2) multi-rank: results are logged during the window and the run
    #    matches the original when no failure occurs
    ref3 = run_original(app, 3)
    ref3.raise_errors()
    result, stats = run_c3(
        app, 3, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=ref3.virtual_time * 0.25,
                        log_reduction_results=True))
    result.raise_errors()
    assert result.returns == ref3.returns
    assert sum(s.events_logged for s in stats if s) > 0


def test_barrier_across_recovery_line():
    """A barrier can straddle a recovery line (some ranks checkpoint
    before it, some after); the per-stream token machinery keeps it
    consistent across a failure."""
    def app(ctx):
        comm = ctx.comm
        if ctx.first_time("setup"):
            ctx.state.n = 0.0
            ctx.done("setup")
        for it in ctx.range("i", 12):
            ctx.checkpoint()
            ctx.compute(1e-4 * (1 + 2 * ctx.rank))  # heavy stagger
            comm.Barrier()
            ctx.state.n += 1.0
        return ctx.state.n

    ref = run_original(app, 3)
    ref.raise_errors()
    T = ref.virtual_time
    res = run_fault_tolerant(
        app, 3, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=T * 0.15),
        fault_plan=FaultPlan([FaultSpec(rank=0, at_time=T * 0.5)]))
    assert res.returns == [12.0, 12.0, 12.0]
