"""Figure 5 actions: start / commit / restore, versioning, commit rules."""

import numpy as np
import pytest

from repro.core import C3Config, run_c3, run_fault_tolerant
from repro.mpi import FaultPlan, FaultSpec
from repro.storage import (
    InMemoryStorage, checkpoint_bytes, committed_versions,
    last_committed_global, last_committed_local,
)


def looping_app(ctx, niter=12, work=1e-4):
    comm = ctx.comm
    r, s = ctx.rank, ctx.size
    if ctx.first_time("setup"):
        ctx.state.x = np.zeros(4)
        ctx.done("setup")
    for it in ctx.range("i", niter):
        ctx.checkpoint()
        comm.Send(ctx.state.x + it, dest=(r + 1) % s, tag=1)
        buf = np.zeros(4)
        comm.Recv(buf, source=(r - 1) % s, tag=1)
        ctx.state.x = buf + 1
        ctx.compute(work)
    return float(ctx.state.x.sum())


def test_versions_advance_and_commit(storage):
    # gc_lines=False keeps the full commit history so every version's
    # marker can be asserted; production GC retention is covered by
    # tests/core/test_overlap.py
    result, stats = run_c3(looping_app, 3, storage=storage,
                           config=C3Config(checkpoint_interval=3e-4,
                                           gc_lines=False))
    result.raise_errors()
    n = stats[0].checkpoints_committed
    assert n >= 2
    for rank in range(3):
        assert committed_versions(storage, rank) == list(range(1, n + 1))
    assert last_committed_global(storage, 3) == n


def test_checkpoint_sections_present(storage):
    result, stats = run_c3(looping_app, 2, storage=storage,
                           config=C3Config(checkpoint_interval=4e-4))
    result.raise_errors()
    last = stats[0].checkpoints_committed  # earlier lines are GC'd
    paths = storage.list(f"ckpt/v{last}/rank0/")
    names = {p.rsplit("/", 1)[1] for p in paths}
    assert names == {"app", "mpi_state", "handles", "early_registry",
                     "counters", "late_registry", "event_log",
                     "request_table", "COMMIT"}


def test_dry_run_stores_nothing(storage):
    result, stats = run_c3(looping_app, 2, storage=storage,
                           config=C3Config(checkpoint_interval=4e-4,
                                           save_to_disk=False))
    result.raise_errors()
    assert stats[0].checkpoints_committed >= 1       # went through the motions
    assert stats[0].last_checkpoint_bytes > 0        # bytes were counted
    assert storage.list() == []                      # nothing stored


def test_restore_uses_global_minimum(storage):
    """If one rank committed v2 but another only v1, recovery must use v1.

    Runs with gc_lines=False: the scenario models a rank whose *markers*
    were lost after the fact, which production GC (whose floor assumes
    written markers are durable) would have made unreachable.
    """
    config = C3Config(checkpoint_interval=3e-4, gc_lines=False)
    result, stats = run_c3(looping_app, 2, storage=storage, config=config)
    result.raise_errors()
    committed = stats[0].checkpoints_committed
    assert committed >= 2
    # simulate a rank whose later commits were lost with the node
    for v in range(2, committed + 1):
        storage.delete(f"ckpt/v{v}/rank1/COMMIT")
    assert last_committed_local(storage, 0) == committed
    assert last_committed_global(storage, 2) == 1

    restarted, rstats = run_c3(looping_app, 2, storage=storage,
                               config=config, restoring=True)
    restarted.raise_errors()
    assert rstats[0].restored_version == 1


def test_restore_without_any_commit_is_cold_start(storage):
    res = run_fault_tolerant(
        looping_app, 2, storage=storage,
        config=C3Config(),  # no timer: no checkpoints ever taken
        fault_plan=FaultPlan([FaultSpec(rank=1, at_time=5e-4)]))
    # the job failed once, restarted cold, and still finished correctly
    assert res.restarts == 1
    assert res.stats[0].restored_version is None
    ref = run_fault_tolerant(looping_app, 2, storage=InMemoryStorage(),
                             config=C3Config())
    assert res.returns == ref.returns


def test_checkpoint_bytes_accounting(storage):
    result, stats = run_c3(looping_app, 2, storage=storage,
                           config=C3Config(checkpoint_interval=4e-4))
    result.raise_errors()
    measured = checkpoint_bytes(storage, stats[0].checkpoints_committed, 0)
    assert measured > 0
    # stats track the app+handles part and the commit-time log part
    assert measured <= (stats[0].last_checkpoint_bytes
                        + stats[0].last_log_bytes) * 1.01 + 4096


def test_forced_pragma_takes_checkpoint(storage):
    def app(ctx):
        if ctx.first_time("setup"):
            ctx.state.v = 1.0
            ctx.done("setup")
        for it in ctx.range("i", 6):
            ctx.checkpoint(force=(it == 2))
            # commit is lazy: it completes as control messages are polled
            # at later protocol operations, so keep communicating
            ctx.comm.Barrier()
        return True

    result, stats = run_c3(app, 2, storage=storage, config=C3Config())
    result.raise_errors()
    assert stats[0].checkpoints_committed == 1


def test_max_checkpoints_cap(storage):
    result, stats = run_c3(looping_app, 2, storage=storage,
                           config=C3Config(checkpoint_interval=1e-4,
                                           max_checkpoints=1))
    result.raise_errors()
    assert stats[0].checkpoints_started == 1


def test_repeated_failures_roll_forward(storage):
    """Two failures at different points; each recovery resumes from the
    newest line committed at that moment."""
    plan = FaultPlan([
        FaultSpec(rank=0, at_time=6e-4),
        FaultSpec(rank=1, at_time=1.1e-3),
    ])
    res = run_fault_tolerant(
        looping_app, 3, storage=storage,
        config=C3Config(checkpoint_interval=2.5e-4), fault_plan=plan)
    assert res.restarts == 2
    ref = run_fault_tolerant(looping_app, 3, storage=InMemoryStorage(),
                             config=C3Config())
    assert res.returns == ref.returns
