"""Request indirection table unit behavior (Section 4.1)."""

import pytest

from repro.core.modes import ProtocolError
from repro.core.reqtable import RequestTable


@pytest.fixture
def table():
    return RequestTable()


def test_ids_are_sequential(table):
    a = table.alloc("recv", 0, 1, 2, 4, "MPI_DOUBLE", epoch=0)
    b = table.alloc("send", 0, 1, 2, 4, "MPI_DOUBLE", epoch=0)
    assert b.rid == a.rid + 1


def test_release_removes_outside_checkpoint_period(table):
    e = table.alloc("recv", 0, 1, 2, 4, "MPI_DOUBLE", epoch=0)
    table.release(e)
    with pytest.raises(ProtocolError):
        table.get(e.rid)


def test_deferred_deallocation_during_checkpoint_period(table):
    e = table.alloc("recv", 0, 1, 2, 4, "MPI_DOUBLE", epoch=0)
    table.on_start_checkpoint()
    table.release(e)
    # garbage-marked but still present until the table is saved
    assert len(table) == 1
    wire = table.on_commit(lambda buf: None)
    assert len(table) == 0
    assert wire["entries"][0]["garbage"] is True


def test_test_counters_reset_at_start(table):
    e = table.alloc("recv", 0, 1, 2, 4, "MPI_DOUBLE", epoch=0)
    e.test_counter = 5
    table.on_start_checkpoint()
    assert e.test_counter == 0


def test_commit_snapshot_and_rollback(table):
    pre = table.alloc("recv", 0, 1, 2, 4, "MPI_DOUBLE", epoch=0)
    table.on_start_checkpoint()       # line at epoch 1
    post = table.alloc("recv", 0, 1, 3, 4, "MPI_DOUBLE", epoch=1)
    pre.test_counter = 2
    post.test_counter = 7
    wire = table.on_commit(lambda buf: "key")

    fresh = RequestTable()
    survivors = fresh.restore_wire(wire, line_epoch=1)
    # the post-line allocation is rolled back; its allocation re-executes
    assert [e.rid for e in survivors] == [pre.rid]
    # but ALL test counters are kept for replay, keyed by rid
    assert fresh.replay_test_counters == {pre.rid: 2, post.rid: 7}
    # id counter rolled back so re-executed allocations reuse the same ids
    again = fresh.alloc("recv", 0, 1, 3, 4, "MPI_DOUBLE", epoch=1)
    assert again.rid == post.rid


def test_late_completed_entries_marked_from_log(table):
    e = table.alloc("recv", 0, 1, 2, 4, "MPI_DOUBLE", epoch=0)
    table.on_start_checkpoint()
    e.completed_by = "late"
    table.release(e)
    wire = table.on_commit(lambda buf: "k")
    fresh = RequestTable()
    survivors = fresh.restore_wire(wire, line_epoch=1)
    assert survivors[0].from_log is True


def test_state_key_resolved_for_open_recvs(table):
    marker = object()
    e = table.alloc("recv", 0, 1, 2, 4, "MPI_DOUBLE", epoch=0, buffer=marker)
    table.on_start_checkpoint()
    wire = table.on_commit(
        lambda buf: "mykey" if buf is marker else None)
    assert wire["entries"][0]["state_key"] == "mykey"


def test_unknown_rid(table):
    with pytest.raises(ProtocolError):
        table.get(123)
