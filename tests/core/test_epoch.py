"""Epoch colors, message classification (Figure 2), piggyback codecs."""

import pytest
from hypothesis import given, strategies as st

from repro.core.epoch import (
    CODECS, EARLY, FullCodec, INTRA, LATE, ThreeBitCodec, classify,
)
from repro.core.modes import ProtocolError


class TestClassify:
    def test_definition_1(self):
        assert classify(0, 1) == LATE      # sender epoch < receiver epoch
        assert classify(1, 1) == INTRA
        assert classify(2, 1) == EARLY     # sender epoch > receiver epoch

    def test_more_than_one_line_is_a_protocol_violation(self):
        with pytest.raises(ProtocolError):
            classify(0, 2)
        with pytest.raises(ProtocolError):
            classify(5, 3)


class TestThreeBitCodec:
    def test_wire_size_is_one_byte(self):
        assert ThreeBitCodec.nbytes == 1

    def test_encode_fits_in_three_bits(self):
        c = ThreeBitCodec()
        for epoch in range(10):
            for stopped in (False, True):
                assert 0 <= c.encode(epoch, stopped) < 8

    @pytest.mark.parametrize("receiver", range(8))
    @pytest.mark.parametrize("delta", [-1, 0, 1])
    def test_roundtrip_within_one_line(self, receiver, delta):
        sender = receiver + delta
        c = ThreeBitCodec()
        if sender < 0:
            # Epoch -1 does not exist: no valid sender can be one line
            # behind a receiver in epoch 0, so its color (the one that
            # would decode to -1) must be rejected, not resolved.
            with pytest.raises(ProtocolError):
                c.decode(c.encode(sender, True), receiver)
            return
        pb = c.decode(c.encode(sender, True), receiver)
        assert pb.sender_epoch == sender
        assert pb.stopped_logging

    def test_logging_bit(self):
        c = ThreeBitCodec()
        assert not c.decode(c.encode(3, False), 3).stopped_logging
        assert c.decode(c.encode(3, True), 3).stopped_logging


class TestFullCodec:
    def test_roundtrip(self):
        c = FullCodec()
        pb = c.decode(c.encode(41, False), 42)
        assert pb.sender_epoch == 41
        assert not pb.stopped_logging

    def test_detects_multi_line_crossing(self):
        c = FullCodec()
        with pytest.raises(ProtocolError):
            c.decode(c.encode(10, True), 3)

    def test_wire_size_larger_than_three_bit(self):
        assert FullCodec.nbytes > ThreeBitCodec.nbytes


def test_codec_registry():
    assert set(CODECS) == {"3bit", "full"}


@given(receiver=st.integers(0, 1000), delta=st.integers(-1, 1),
       stopped=st.booleans())
def test_three_bit_codec_roundtrip_property(receiver, delta, stopped):
    """Property: the 2-bit color uniquely identifies the sender epoch
    whenever |sender - receiver| <= 1 (the paper's Section 3.2 argument);
    a color with no sender epoch in that window is a protocol violation."""
    sender = receiver + delta
    c = ThreeBitCodec()
    if sender < 0:
        with pytest.raises(ProtocolError):
            c.decode(c.encode(sender, stopped), receiver)
        return
    pb = c.decode(c.encode(sender, stopped), receiver)
    assert pb.sender_epoch == sender
    assert pb.stopped_logging == stopped
