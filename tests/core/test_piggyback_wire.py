"""Wire-level piggyback accounting in the engine."""

import numpy as np
import pytest

from repro.core.epoch import WirePiggyback
from repro.mpi import TESTING, run_job


def test_piggyback_bytes_charged_on_wire():
    """An envelope with a piggyback costs extra wire time proportional to
    the piggyback's size — the term Tables 2-3's overheads come from."""
    machine = TESTING.with_overrides(latency=0.0, bandwidth=1e3,
                                     call_overhead=0.0,
                                     piggyback_overhead=0.0)

    def main(mpi, nbytes):
        comm = mpi.COMM_WORLD
        if comm.rank == 0:
            comm.send_packed(b"x", 1, 0, count=1, type_name="MPI_BYTE",
                             piggyback=WirePiggyback(0, nbytes) if nbytes
                             else None)
            return 0.0
        buf = np.zeros(1, dtype=np.uint8)
        req = comm.Irecv(buf, source=0, tag=0)
        req.wait()
        return mpi.Wtime()

    bare = run_job(2, main, args=(0,), machine=machine)
    bare.raise_errors()
    heavy = run_job(2, main, args=(100,), machine=machine)
    heavy.raise_errors()
    # 100 piggyback bytes at 1 kB/s = 0.1 s extra
    assert heavy.returns[1] - bare.returns[1] == pytest.approx(0.1, rel=0.05)


def test_piggyback_platform_overhead_charged():
    machine = TESTING.with_overrides(latency=0.0, bandwidth=1e12,
                                     call_overhead=0.0,
                                     piggyback_overhead=0.25)

    def main(mpi):
        comm = mpi.COMM_WORLD
        if comm.rank == 0:
            comm.send_packed(b"x", 1, 0, count=1, type_name="MPI_BYTE",
                             piggyback=WirePiggyback(0, 1))
            return 0.0
        buf = np.zeros(1, dtype=np.uint8)
        comm.Irecv(buf, source=0, tag=0).wait()
        return mpi.Wtime()

    result = run_job(2, main, machine=machine)
    result.raise_errors()
    assert result.returns[1] >= 0.25


def test_plain_messages_carry_no_piggyback_cost():
    machine = TESTING.with_overrides(latency=0.0, bandwidth=1e3,
                                     call_overhead=0.0,
                                     piggyback_overhead=10.0)

    def main(mpi):
        comm = mpi.COMM_WORLD
        if comm.rank == 0:
            comm.Send(np.zeros(1, dtype=np.uint8), dest=1, tag=0)
            return 0.0
        buf = np.zeros(1, dtype=np.uint8)
        comm.Irecv(buf, source=0, tag=0).wait()
        return mpi.Wtime()

    result = run_job(2, main, machine=machine)
    result.raise_errors()
    assert result.returns[1] < 0.1  # no 10-second penalty
