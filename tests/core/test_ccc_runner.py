"""The top-level runner plumbing (repro.core.ccc)."""

import numpy as np
import pytest

from repro.apps.ring import ring
from repro.core import (
    C3Config, C3RunResult, ProtocolError, cached_comm, run_c3,
    run_fault_tolerant, run_original,
)
from repro.mpi import FaultPlan, FaultSpec
from repro.storage import InMemoryStorage


def test_run_result_properties():
    res = run_fault_tolerant(ring, 2, storage=InMemoryStorage(),
                             config=C3Config())
    assert isinstance(res, C3RunResult)
    assert res.virtual_time == res.job.virtual_time
    assert res.returns == res.job.returns
    assert res.restarts == 0 and res.history == []


def test_stats_split_from_returns():
    result, stats = run_c3(ring, 3, storage=InMemoryStorage(),
                           config=C3Config())
    result.raise_errors()
    assert len(stats) == 3
    assert all(s is not None for s in stats)
    assert all(not isinstance(r, tuple) for r in result.returns)


def test_max_restarts_exceeded():
    # a fault that fires on every attempt (clock-based, always reached)
    plan = FaultPlan([FaultSpec(rank=0, after_ops=2),
                      FaultSpec(rank=0, after_ops=3),
                      FaultSpec(rank=0, after_ops=4),
                      FaultSpec(rank=0, after_ops=5)])
    with pytest.raises(ProtocolError, match="giving up"):
        run_fault_tolerant(ring, 2, storage=InMemoryStorage(),
                           config=C3Config(), fault_plan=plan,
                           max_restarts=2)


def test_app_args_forwarded():
    def app(ctx, factor):
        return ctx.rank * factor

    result, _ = run_c3(app, 2, storage=InMemoryStorage(), config=C3Config(),
                       app_args=(10,))
    result.raise_errors()
    assert result.returns == [0, 10]
    orig = run_original(app, 2, app_args=(10,))
    orig.raise_errors()
    assert orig.returns == [0, 10]


def test_cached_comm_rejects_double_create_in_original_mode():
    def app(ctx):
        cached_comm(ctx, "sub", lambda: ctx.comm.Dup())
        try:
            cached_comm(ctx, "sub", lambda: ctx.comm.Dup())
        except ProtocolError:
            return "raised"
        return "rebuilt"

    # under C3 the second call rebuilds the handle from the table
    result, _ = run_c3(app, 2, storage=InMemoryStorage(), config=C3Config())
    result.raise_errors()
    assert result.returns == ["rebuilt", "rebuilt"]
    # in original mode there is no table, so it raises
    orig = run_original(app, 2)
    orig.raise_errors()
    assert orig.returns == ["raised", "raised"]


def test_app_exception_surfaces_through_runner():
    def app(ctx):
        if ctx.rank == 1:
            raise ValueError("app bug")
        return 1

    with pytest.raises(RuntimeError, match="app bug"):
        run_fault_tolerant(app, 2, storage=InMemoryStorage(),
                           config=C3Config())
