"""Figure 4 wrappers: piggybacking, counters, suppression, replay."""

import numpy as np
import pytest

from repro.core import C3Config, ProtocolError, run_c3, run_original
from repro.core.protocol import COLL_TAG
from repro.mpi import FaultPlan, FaultSpec
from repro.mpi.matching import ANY_SOURCE
from repro.storage import InMemoryStorage


def test_every_app_message_carries_piggyback():
    """The raw engine would reject classification without a piggyback; a
    clean C3 run of p2p traffic proves every message carried one."""
    def app(ctx):
        comm = ctx.comm
        r, s = ctx.rank, ctx.size
        for it in ctx.range("i", 5):
            ctx.checkpoint()
            comm.Send(np.zeros(2), dest=(r + 1) % s, tag=1)
            comm.Recv(np.zeros(2), source=(r - 1) % s, tag=1)
        return True

    result, _ = run_c3(app, 3, storage=InMemoryStorage(), config=C3Config())
    result.raise_errors()
    assert all(result.returns)


def test_reserved_collective_tag_rejected():
    def app(ctx):
        try:
            ctx.comm.Send(np.zeros(1), dest=0, tag=COLL_TAG)
        except ProtocolError:
            return "raised"

    result, _ = run_c3(app, 2, storage=InMemoryStorage(), config=C3Config())
    result.raise_errors()
    assert result.returns[0] == "raised"


def test_sent_counts_announced_with_checkpoint():
    """Peers learn how many late messages to expect from the
    Checkpoint-Initiated counts; a commit proves the accounting balanced."""
    def app(ctx):
        comm = ctx.comm
        r, s = ctx.rank, ctx.size
        if ctx.first_time("setup"):
            ctx.state.x = np.zeros(1)
            ctx.done("setup")
        for it in ctx.range("i", 12):
            ctx.checkpoint()
            ctx.compute(1e-4 if r else 3e-4)  # stagger
            comm.Send(ctx.state.x + it, dest=(r + 1) % s, tag=2)
            buf = np.zeros(1)
            comm.Recv(buf, source=(r - 1) % s, tag=2)
            ctx.state.x = buf
        return float(ctx.state.x[0])

    result, stats = run_c3(app, 3, storage=InMemoryStorage(),
                           config=C3Config(checkpoint_interval=6e-4))
    result.raise_errors()
    assert min(s.checkpoints_committed for s in stats) >= 1
    assert all(s.control_msgs > 0 for s in stats)


def test_wildcard_receive_logged_during_nondet_phase():
    """Deterministic scenario: ranks 0 and 1 checkpoint, rank 2 is still
    busy before its pragma, so rank 0 stays in NonDet-Log (one missing
    Checkpoint-Initiated) while it wildcard-receives intra-epoch messages
    from rank 1 — exactly the case whose order must be logged."""
    def app(ctx):
        comm = ctx.comm
        r, s = ctx.rank, ctx.size
        if ctx.first_time("setup"):
            ctx.state.seen = 0.0
            ctx.done("setup")
        for it in ctx.range("i", 2):
            if r == 2 and it == 1:
                # keep rank 2 away from its pragma in *real* time: a long
                # self ping-pong of engine operations
                buf = np.zeros(1)
                for k in range(400):
                    req = ctx.mpi.COMM_SELF.Irecv(buf, source=0, tag=9)
                    ctx.mpi.COMM_SELF.Send(np.zeros(1), dest=0, tag=9)
                    req.wait()
            ctx.checkpoint(force=(it == 1))
            if it == 1:
                if r == 1:
                    for k in range(5):
                        comm.Send(np.array([float(k)]), dest=0, tag=3)
                elif r == 0:
                    for k in range(5):
                        buf = np.zeros(1)
                        comm.Recv(buf, source=ANY_SOURCE, tag=3)
                        ctx.state.seen += float(buf[0])
        return ctx.state.seen

    result, stats = run_c3(app, 3, storage=InMemoryStorage(),
                           config=C3Config())
    result.raise_errors()
    assert result.returns[0] == 10.0
    # rank 1's messages were intra-epoch (both past their pragma) and rank
    # 0 was still logging non-determinism (rank 2's announcement pending)
    assert stats[0].wildcard_logged > 0


def test_suppressed_send_still_counts():
    """A send suppressed during recovery must still increment Sent-Count,
    or the next recovery line's late accounting would never balance.
    Verified end-to-end: a run with early messages + failure + a further
    checkpoint after recovery commits successfully."""
    def app(ctx):
        comm = ctx.comm
        r, s = ctx.rank, ctx.size
        if ctx.first_time("setup"):
            ctx.state.x = 0.0
            ctx.done("setup")
        for it in ctx.range("i", 16):
            ctx.checkpoint()
            ctx.compute(1e-4 * (1 + 3 * r))  # strong stagger -> early msgs
            comm.Send(np.array([float(it)]), dest=(r + 1) % s, tag=4)
            buf = np.zeros(1)
            comm.Recv(buf, source=(r - 1) % s, tag=4)
            ctx.state.x += float(buf[0])
        return ctx.state.x

    ref = run_original(app, 3)
    ref.raise_errors()
    T = ref.virtual_time

    from repro.core import run_fault_tolerant
    storage = InMemoryStorage()
    res = run_fault_tolerant(
        app, 3, storage=storage,
        config=C3Config(checkpoint_interval=T * 0.15),
        fault_plan=FaultPlan([FaultSpec(rank=2, at_time=T * 0.5)]))
    assert res.returns == ref.returns
    # the recovered run must commit at least one NEW line (accounting holds)
    assert max(s.checkpoints_committed for s in res.stats if s) >= 1
