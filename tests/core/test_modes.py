"""Figure 3 state machine."""

import pytest

from repro.core.modes import Mode, ModeTracker, ProtocolError


class TestTransitions:
    def test_initial_mode(self):
        assert ModeTracker().mode is Mode.RUN

    def test_full_cycle(self):
        t = ModeTracker()
        t.start_checkpoint(all_started=False, late_expected=True)
        assert t.mode is Mode.NONDET_LOG
        t.stop_nondet_logging(late_expected=True)
        assert t.mode is Mode.RECVONLY_LOG
        t.commit()
        assert t.mode is Mode.RUN

    def test_start_with_all_started_skips_nondet(self):
        t = ModeTracker()
        t.start_checkpoint(all_started=True, late_expected=True)
        assert t.mode is Mode.RECVONLY_LOG

    def test_start_with_nothing_to_log_returns_to_run(self):
        t = ModeTracker()
        t.start_checkpoint(all_started=True, late_expected=False)
        assert t.mode is Mode.RUN

    def test_stop_nondet_with_no_late_goes_to_run(self):
        t = ModeTracker()
        t.start_checkpoint(all_started=False, late_expected=True)
        t.stop_nondet_logging(late_expected=False)
        assert t.mode is Mode.RUN

    def test_restore_cycle(self):
        t = ModeTracker(Mode.RESTORE)
        t.finish_restore()
        assert t.mode is Mode.RUN

    def test_history_records_path(self):
        t = ModeTracker()
        t.start_checkpoint(all_started=False, late_expected=True)
        t.stop_nondet_logging(late_expected=True)
        t.commit()
        assert t.history == [Mode.RUN, Mode.NONDET_LOG, Mode.RECVONLY_LOG,
                             Mode.RUN]


class TestIllegalTransitions:
    def test_checkpoint_outside_run(self):
        t = ModeTracker(Mode.RESTORE)
        with pytest.raises(ProtocolError):
            t.start_checkpoint(all_started=False, late_expected=True)

    def test_commit_outside_recvonly(self):
        with pytest.raises(ProtocolError):
            ModeTracker().commit()

    def test_stop_nondet_outside_nondet(self):
        with pytest.raises(ProtocolError):
            ModeTracker().stop_nondet_logging(late_expected=True)

    def test_finish_restore_outside_restore(self):
        with pytest.raises(ProtocolError):
            ModeTracker().finish_restore()

    def test_raw_transition_validation(self):
        t = ModeTracker()
        with pytest.raises(ProtocolError):
            t.transition(Mode.RESTORE)


class TestPredicates:
    def test_logging_predicates(self):
        t = ModeTracker()
        assert not t.is_logging_nondet
        assert not t.is_logging_late
        t.start_checkpoint(all_started=False, late_expected=True)
        assert t.is_logging_nondet
        assert t.is_logging_late
        t.stop_nondet_logging(late_expected=True)
        assert not t.is_logging_nondet
        assert t.is_logging_late
