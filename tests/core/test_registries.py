"""Message registries and the event log."""

import pytest
from hypothesis import given, strategies as st

from repro.core.modes import ProtocolError
from repro.core.registries import (
    DATA, EarlyMessageRegistry, EventLog, LateMessageRegistry, WILDCARD,
    WasEarlyRegistry,
)
from repro.mpi.matching import ANY_SOURCE, ANY_TAG


class TestLateRegistry:
    def test_record_and_match_exact(self):
        reg = LateMessageRegistry()
        reg.record_late(1, 2, 0, b"hello", rid=7)
        m = reg.match(1, 2, 0)
        assert m is not None and m.kind == DATA and m.payload == b"hello"

    def test_match_respects_wildcards(self):
        reg = LateMessageRegistry()
        reg.record_late(3, 9, 0, b"x")
        assert reg.match(ANY_SOURCE, 9, 0) is not None
        assert reg.match(3, ANY_TAG, 0) is not None
        assert reg.match(ANY_SOURCE, ANY_TAG, 0) is not None
        assert reg.match(ANY_SOURCE, ANY_TAG, 1) is None  # other context

    def test_match_rid(self):
        reg = LateMessageRegistry()
        reg.record_late(1, 1, 0, b"a", rid=10)
        reg.record_late(1, 1, 0, b"b", rid=11)
        assert reg.match_rid(11).payload == b"b"
        assert reg.match_rid(99) is None

    def test_order_preserved_per_signature(self):
        reg = LateMessageRegistry()
        reg.record_late(1, 1, 0, b"first")
        reg.record_late(1, 1, 0, b"second")
        m = reg.match(1, 1, 0)
        assert m.payload == b"first"
        reg.pop(m)
        assert reg.match(1, 1, 0).payload == b"second"

    def test_pop_twice_raises(self):
        reg = LateMessageRegistry()
        reg.record_late(1, 1, 0, b"x")
        m = reg.match(1, 1, 0)
        reg.pop(m)
        with pytest.raises(ProtocolError):
            reg.pop(m)

    def test_wildcard_entries(self):
        reg = LateMessageRegistry()
        reg.record_wildcard(2, 5, 0, rid=3)
        m = reg.match(ANY_SOURCE, ANY_TAG, 0)
        assert m.kind == WILDCARD and m.payload is None

    def test_wire_roundtrip(self):
        reg = LateMessageRegistry()
        reg.record_late(1, 2, 3, b"data", rid=4)
        reg.record_wildcard(5, 6, 7, rid=8)
        back = LateMessageRegistry.from_wire(reg.to_wire())
        assert len(back) == 2
        assert back.match_rid(4).payload == b"data"
        assert back.match_rid(8).kind == WILDCARD

    def test_data_bytes(self):
        reg = LateMessageRegistry()
        reg.record_late(0, 0, 0, b"12345")
        reg.record_wildcard(0, 0, 0)
        assert reg.data_bytes == 5


class TestEarlyRegistry:
    def test_multiset_semantics(self):
        reg = EarlyMessageRegistry()
        reg.record(1, 2, 0)
        reg.record(1, 2, 0)
        assert len(reg) == 2

    def test_by_sender(self):
        reg = EarlyMessageRegistry()
        reg.record(1, 2, 0)
        reg.record(3, 4, 0)
        reg.record(1, 5, 0)
        grouped = reg.by_sender()
        assert grouped[1] == [(2, 0), (5, 0)]
        assert grouped[3] == [(4, 0)]

    def test_wire_roundtrip(self):
        reg = EarlyMessageRegistry()
        reg.record(1, 2, 3)
        back = EarlyMessageRegistry.from_wire(reg.to_wire())
        assert back.by_sender() == {1: [(2, 3)]}

    def test_reset(self):
        reg = EarlyMessageRegistry()
        reg.record(1, 2, 0)
        reg.reset()
        assert not reg


class TestWasEarlyRegistry:
    def test_match_and_remove(self):
        reg = WasEarlyRegistry()
        reg.add(1, 2, 0)
        assert reg.match_and_remove(1, 2, 0)
        assert not reg.match_and_remove(1, 2, 0)  # removed

    def test_multiset(self):
        reg = WasEarlyRegistry()
        reg.add(1, 2, 0)
        reg.add(1, 2, 0)
        assert reg.match_and_remove(1, 2, 0)
        assert reg.match_and_remove(1, 2, 0)
        assert not reg.match_and_remove(1, 2, 0)

    def test_no_match_for_other_dest(self):
        reg = WasEarlyRegistry()
        reg.add(1, 2, 0)
        assert not reg.match_and_remove(2, 2, 0)
        assert len(reg) == 1


class TestEventLog:
    def test_record_and_replay_in_order(self):
        log = EventLog()
        log.record(EventLog.WAITANY, 5)
        log.record(EventLog.COLLECTIVE_RESULT, b"r")
        assert log.replay(EventLog.WAITANY) == 5
        assert log.replay(EventLog.COLLECTIVE_RESULT) == b"r"
        assert log.drained

    def test_kind_mismatch_is_divergence(self):
        log = EventLog()
        log.record(EventLog.WAITANY, 1)
        with pytest.raises(ProtocolError):
            log.replay(EventLog.COLLECTIVE_RESULT)

    def test_replay_past_end_returns_none(self):
        assert EventLog().replay(EventLog.WAITANY) is None

    def test_wire_roundtrip(self):
        log = EventLog()
        log.record(EventLog.WAITSOME, [1, 2, 3])
        back = EventLog.from_wire(log.to_wire())
        assert back.replay(EventLog.WAITSOME) == [1, 2, 3]


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3),
                          st.binary(min_size=1, max_size=8)),
                min_size=1, max_size=20))
def test_late_registry_fifo_property(entries):
    """Property: per signature, entries pop in record order."""
    reg = LateMessageRegistry()
    for i, (src, tag, payload) in enumerate(entries):
        reg.record_late(src, tag, 0, payload, rid=i)
    seen = {}
    for src, tag, payload in entries:
        m = reg.match(src, tag, 0)
        assert m is not None
        # the matched entry is the oldest unconsumed one for this signature
        key = (src, tag)
        expected_idx = seen.get(key, 0)
        same_sig = [i for i, e in enumerate(entries)
                    if (e[0], e[1]) == key]
        assert m.rid == same_sig[expected_idx]
        seen[key] = expected_idx + 1
        reg.pop(m)
    assert not reg
