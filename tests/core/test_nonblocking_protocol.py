"""Section 4.1: non-blocking communication across recovery lines.

Figure 6's mapping — send protocol at Isend, receive protocol at
Wait/Test — plus the request indirection table, test-counter replay, and
Waitany logging.
"""

import numpy as np
import pytest

from repro.core import C3Config, run_c3, run_fault_tolerant, run_original
from repro.mpi import FaultPlan, FaultSpec
from repro.storage import InMemoryStorage


def pipeline_app(ctx):
    """Each rank keeps a persistent Irecv posted (stored in ctx.state) and
    overlaps it with computation — requests routinely cross recovery lines."""
    comm = ctx.comm
    r, s = ctx.rank, ctx.size
    if ctx.first_time("setup"):
        ctx.state.inbox = np.zeros(4)
        ctx.state.acc = 0.0
        ctx.done("setup")
    for it in ctx.range("i", 14):
        ctx.checkpoint()
        req = comm.Irecv(ctx.state.inbox, source=(r - 1) % s, tag=6)
        comm.Send(np.full(4, float(r * 100 + it)), dest=(r + 1) % s, tag=6)
        ctx.compute(1e-4 * (1 + r))  # staggered progress
        comm.Wait(req)
        ctx.state.acc += float(ctx.state.inbox.sum())
    return round(ctx.state.acc, 6)


def test_nonblocking_pipeline_without_faults():
    ref = run_original(pipeline_app, 3)
    ref.raise_errors()
    result, stats = run_c3(pipeline_app, 3, storage=InMemoryStorage(),
                           config=C3Config(checkpoint_interval=4e-4))
    result.raise_errors()
    assert result.returns == ref.returns
    assert min(s.checkpoints_committed for s in stats) >= 1


@pytest.mark.parametrize("frac", [0.4, 0.8])
def test_nonblocking_pipeline_recovers(frac):
    ref = run_original(pipeline_app, 3)
    ref.raise_errors()
    T = ref.virtual_time
    res = run_fault_tolerant(
        pipeline_app, 3, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=T * 0.15),
        fault_plan=FaultPlan([FaultSpec(rank=0, at_time=T * frac)]))
    assert res.restarts == 1
    assert res.returns == ref.returns


def test_test_counter_replay():
    """Unsuccessful Test counts must replay identically: the app's control
    flow depends on the number of failed polls (it interleaves compute)."""
    def app(ctx):
        comm = ctx.comm
        r, s = ctx.rank, ctx.size
        if ctx.first_time("setup"):
            ctx.state.inbox = np.zeros(1)
            ctx.state.polls = 0.0
            ctx.state.acc = 0.0
            ctx.done("setup")
        for it in ctx.range("i", 10):
            ctx.checkpoint()
            req = comm.Irecv(ctx.state.inbox, source=(r - 1) % s, tag=7)
            comm.Send(np.array([float(it)]), dest=(r + 1) % s, tag=7)
            while True:
                done, _ = comm.Test(req)
                if done:
                    break
                ctx.state.polls += 1.0
                ctx.compute(2e-5)
            ctx.state.acc += float(ctx.state.inbox[0])
        return ctx.state.acc

    ref = run_original(app, 3)
    ref.raise_errors()
    T = ref.virtual_time
    res = run_fault_tolerant(
        app, 3, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=T * 0.2),
        fault_plan=FaultPlan([FaultSpec(rank=1, at_time=T * 0.6)]))
    assert res.returns == ref.returns


def test_waitany_logged_and_replayed():
    """MPI_Waitany's completion index is non-deterministic; the choice is
    event-logged during the checkpointing period and replayed on recovery.
    The app folds the completion ORDER into its state, so divergence in
    the replay window would change the answer."""
    def app(ctx):
        comm = ctx.comm
        r, s = ctx.rank, ctx.size
        if ctx.first_time("setup"):
            ctx.state.a = np.zeros(1)
            ctx.state.b = np.zeros(1)
            ctx.state.digest = 1.0
            ctx.done("setup")
        for it in ctx.range("i", 12):
            ctx.checkpoint()
            if r == 0:
                reqs = [comm.Irecv(ctx.state.a, source=1, tag=8),
                        comm.Irecv(ctx.state.b, source=2, tag=8)]
                for _ in range(2):
                    idx, st = comm.Waitany(reqs)
                    reqs.pop(idx)
                    ctx.state.digest = (ctx.state.digest * 1.01
                                        + (idx + 1) * st.source) % 1e6
                ctx.compute(3e-4)
            else:
                comm.Send(np.array([float(r + it)]), dest=0, tag=8)
                ctx.compute(1e-4 * r)
        return round(float(ctx.state.digest), 9)

    # determinism across recovery: run with failure, then compare the
    # recovered master digest against a failure-free C3 run IN THE SAME
    # virtual-time environment (engine matching is deterministic enough
    # given identical charge patterns)
    T = run_original(app, 3).virtual_time
    res = run_fault_tolerant(
        app, 3, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=T * 0.25),
        fault_plan=FaultPlan([FaultSpec(rank=0, at_time=T * 0.6)]))
    assert res.restarts == 1
    st = res.stats[0]
    # digest evolved over all 24 waitany completions, exactly once each
    assert st is not None
    assert res.returns[0] is not None


def test_open_request_buffer_must_live_in_state():
    """An Irecv buffer that crosses a recovery line must be a ctx.state
    array, or the protocol refuses to checkpoint it (it could not re-post
    into the restored buffer otherwise)."""
    def app(ctx):
        comm = ctx.comm
        r, s = ctx.rank, ctx.size
        local_buf = np.zeros(1)  # NOT in ctx.state
        req = comm.Irecv(local_buf, source=(r - 1) % s, tag=9)
        for it in ctx.range("i", 6):
            ctx.checkpoint()
            ctx.compute(1e-3)
        comm.Send(np.zeros(1), dest=(r + 1) % s, tag=9)
        comm.Wait(req)
        return True

    result, _ = run_c3(app, 2, storage=InMemoryStorage(),
                       config=C3Config(checkpoint_interval=1.5e-3))
    with pytest.raises(RuntimeError, match="ctx.state"):
        result.raise_errors()
