"""Storage-fault injection in isolation.

Each fault class of :class:`FaultyStorage` must be observable through
the PR 6 backend accounting counters (``write_count``, ``written_bytes``,
``fsync_count``, ``read_count``) and the wrapper's own ``injected`` map;
a zero-fault wrapper must be bitwise-transparent.  The WAL-facing
regression class at the bottom pins the ENOSPC-during-group-commit-flush
bug the fuzzer found.
"""

from __future__ import annotations

import pytest

from repro import coverage
from repro.storage.faulty import (STORAGE_FAULT_KINDS, FaultyStorage,
                                  FaultyStore, StorageFault)
from repro.storage.stable import InMemoryStorage, StorageError
from repro.storage.wal import WalStore


def _faulty(*faults):
    return FaultyStorage(InMemoryStorage(), [StorageFault(**f)
                                             for f in faults])


# ---------------------------------------------------------------------------
# Transparency
# ---------------------------------------------------------------------------

def test_zero_fault_wrapper_is_bitwise_transparent():
    bare = InMemoryStorage()
    wrapped = FaultyStorage(InMemoryStorage())

    def script(s):
        s.write("a/x", b"hello")
        s.write("a/y", b"world" * 10)
        s.append("log", b"rec1")
        s.append("log", b"rec2")
        s.sync("log")
        s.delete("a/y")
        return (s.read("a/x"), s.read_range("log", 4, 4), s.list("a/"),
                s.size("log"), s.exists("a/y"))

    assert script(bare) == script(wrapped)
    inner = wrapped.inner
    for counter in ("write_count", "written_bytes", "fsync_count",
                    "read_count"):
        assert getattr(inner, counter) == getattr(bare, counter)
    # counter reads forward through the wrapper too
    assert wrapped.write_count == bare.write_count
    assert wrapped.injected == {k: 0 for k in STORAGE_FAULT_KINDS}


# ---------------------------------------------------------------------------
# One observable test per fault class
# ---------------------------------------------------------------------------

def test_torn_write_persists_a_strict_prefix():
    s = _faulty(dict(kind="torn_write", after_ops=2, keep_fraction=0.5))
    s.write("a", b"A" * 100)
    s.write("b", b"B" * 100)          # torn: only 50 bytes land
    s.write("c", b"C" * 100)
    assert s.read("a") == b"A" * 100
    assert s.read("b") == b"B" * 50
    assert s.read("c") == b"C" * 100
    assert s.injected["torn_write"] == 1
    # the backend counters saw the torn size, not the intended one
    assert s.inner.written_bytes == 250
    assert s.inner.write_count == 3


def test_short_append_leaves_log_offsets_ahead_of_disk():
    s = _faulty(dict(kind="short_append", after_ops=2, keep_fraction=0.25))
    assert s.append("log", b"x" * 40) == 0
    assert s.append("log", b"y" * 40) == 40   # injected: only 10 land
    assert s.size("log") == 50                # disk is 30 bytes short
    assert s.injected["short_append"] == 1
    assert s.inner.written_bytes == 50


def test_bit_rot_flips_exactly_one_bit():
    s = _faulty(dict(kind="bit_rot", after_ops=1, bit=13))
    payload = bytes(range(32))
    s.write("obj", payload)
    rotted = s.read("obj")
    assert len(rotted) == len(payload)
    diff = [(a ^ b) for a, b in zip(payload, rotted)]
    assert sum(bin(d).count("1") for d in diff) == 1
    assert diff[13 // 8] == 1 << (13 % 8)
    assert s.injected["bit_rot"] == 1
    # the rot is a second physical write of the object
    assert s.inner.write_count == 2


def test_enospc_raises_for_a_stretch_then_recovers():
    s = _faulty(dict(kind="enospc", after_ops=2, count=2))
    s.write("a", b"1")
    with pytest.raises(StorageError, match="no space left"):
        s.write("b", b"2")
    with pytest.raises(StorageError, match="no space left"):
        s.append("log", b"3")
    s.write("c", b"4")                 # stretch over: disk has space again
    assert s.injected["enospc"] == 2
    assert not s.exists("b")
    assert s.inner.write_count == 2    # failed ops never reached the disk
    assert s.inner.fsync_count == 2


def test_stalled_sync_loses_the_tail_only_on_crash():
    s = _faulty(dict(kind="stall_sync", after_ops=2))
    s.append("log", b"AAAA")
    s.sync("log")                      # honest: 4 bytes durable
    s.append("log", b"BBBB")
    s.sync("log")                      # swallowed
    assert s.injected["stall_sync"] == 1
    assert s.inner.fsync_count == 1    # the lie never reached the disk
    assert s.read("log") == b"AAAABBBB"
    s.apply_crash()
    assert s.read("log") == b"AAAA"    # the unsynced tail is gone


def test_stalled_sync_is_harmless_on_clean_shutdown():
    s = _faulty(dict(kind="stall_sync", after_ops=1))
    s.append("log", b"AAAA")
    s.sync("log")                      # swallowed
    s.settle()                         # clean job end: the cache drains
    s.apply_crash()
    assert s.read("log") == b"AAAA"


def test_stalled_sync_with_no_durable_point_deletes_the_object():
    s = _faulty(dict(kind="stall_sync", after_ops=1))
    s.append("log", b"AAAA")
    s.sync("log")                      # swallowed; nothing ever durable
    s.apply_crash()
    assert not s.exists("log")


# ---------------------------------------------------------------------------
# Scheduling discipline
# ---------------------------------------------------------------------------

def test_path_prefix_filters_eligible_operations():
    s = _faulty(dict(kind="torn_write", after_ops=1, path_prefix="ckpt/"))
    s.write("wal/seg", b"W" * 10)      # not eligible
    s.write("ckpt/a", b"C" * 10)       # first eligible: torn
    assert s.read("wal/seg") == b"W" * 10
    assert s.read("ckpt/a") == b"C" * 5


def test_after_ops_is_one_based_and_per_fault():
    s = _faulty(dict(kind="torn_write", after_ops=1),
                dict(kind="bit_rot", after_ops=3, bit=0))
    s.write("a", b"\xff" * 8)          # torn (fault 1, op 1)
    s.write("b", b"\xff" * 8)
    s.write("c", b"\xff" * 8)          # rotted (fault 2, op 3)
    assert s.read("a") == b"\xff" * 4
    assert s.read("b") == b"\xff" * 8
    assert s.read("c") != b"\xff" * 8
    assert s.injected == {"torn_write": 1, "bit_rot": 1, "short_append": 0,
                          "enospc": 0, "stall_sync": 0}


def test_injections_report_to_the_coverage_map():
    cmap = coverage.CoverageMap()
    previous = coverage.install(cmap)
    try:
        s = _faulty(dict(kind="enospc", after_ops=1))
        with pytest.raises(StorageError):
            s.write("a", b"x")
    finally:
        coverage.install(previous)
    assert "storage:enospc" in cmap.points()


# ---------------------------------------------------------------------------
# FaultyStore crash sequencing + the ENOSPC group-commit regression
# ---------------------------------------------------------------------------

def test_faulty_store_applies_storage_loss_before_wal_replay():
    backend = FaultyStorage(InMemoryStorage(),
                            [StorageFault(kind="stall_sync", after_ops=2,
                                          count=9)])
    store = FaultyStore(WalStore(backend), backend)
    store.configure(nprocs=1, procs_per_node=1)
    store.put_section(1, 0, "app", b"v1" * 8)
    store.commit_line(1, 0, sections={"app": (16, "x" * 32)})
    store.put_section(2, 0, "app", b"v2" * 8)
    store.commit_line(2, 0, sections={"app": (16, "y" * 32)})  # sync stalls
    # crash: the stalled tail is lost first, then the WAL replays what is
    # physically left — line 2 must vanish, line 1 must survive
    store.on_job_end(failed_rank=0)
    assert store.committed_map().get(0) == [1]
    assert store.read_section(1, 0, "app") == b"v1" * 8
    with pytest.raises(StorageError):
        store.read_section(2, 0, "app")


def test_wal_group_commit_flush_survives_enospc():
    # Regression (found by the fault fuzzer): an injected ENOSPC during
    # the WAL's group-commit flush escaped as a raw StorageError from
    # deep inside commit_line/flush and crashed the job.  The store must
    # instead abandon the staged batch, stay consistent, and keep
    # accepting writes once the disk has space again.
    backend = FaultyStorage(InMemoryStorage(),
                            [StorageFault(kind="enospc", after_ops=2,
                                          path_prefix="wal/")])
    store = WalStore(backend)
    store.configure(nprocs=1, procs_per_node=1)
    store.put_section(1, 0, "app", b"v1" * 8)
    store.commit_line(1, 0, sections={"app": (16, "d" * 32)})  # flush 1: ok
    store.put_section(2, 0, "app", b"v2" * 8)
    with pytest.raises(StorageError, match="no space left"):
        store.commit_line(2, 0, sections={"app": (16, "e" * 32)})
    # the staged batch is abandoned, not half-indexed
    assert store.stats()["flush_failures"] == 1
    assert store.committed_map().get(0) == [1]
    assert not store.validate_line(2, 0)
    assert store.last_committed_local(0, validate=True) == 1
    # disk has space again: the store keeps working
    store.put_section(3, 0, "app", b"v3" * 8)
    store.commit_line(3, 0, sections={"app": (16, "f" * 32)})
    assert store.committed_map().get(0) == [1, 3]
    # a crash + replay agrees with the in-memory view
    store.on_job_end(failed_rank=0)
    assert store.committed_map().get(0) == [1, 3]


def test_commit_hooks_pass_through_faulty_store():
    backend = FaultyStorage(InMemoryStorage())
    wal = WalStore(backend)
    store = FaultyStore(wal, backend)
    assert store.commit_hooks is wal.commit_hooks
    seen = []
    store.commit_hooks[0] = seen.append
    store.configure(nprocs=1, procs_per_node=1)
    store.put_section(1, 0, "app", b"x")
    store.commit_line(1, 0, sections={"app": (1, "d" * 32)})
    assert seen == [1]
