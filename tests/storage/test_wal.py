"""The log-structured checkpoint store (DESIGN.md §8).

Record codec, group-commit durability and fsync discipline, segment
retirement/compaction, crash semantics (torn tails), replay recovery —
including randomized torn / short / bit-flipped segment tails, which
must truncate cleanly at replay and fall back to the prior committed
line bitwise — and parity with the scatter layout as the differential
oracle.
"""

import random

import pytest

from repro.storage.manifest import section_digest
from repro.storage.stable import (
    DiskStorage, InMemoryStorage, StorageError,
)
from repro.storage.store import ScatterStore, as_store
from repro.storage.wal import (
    COMMIT, DELETE, HEADER_LEN, SECTION, WalStore, decode_record,
    encode_record, segment_path,
)


@pytest.fixture(params=["memory", "disk"])
def backend(request, tmp_path):
    if request.param == "memory":
        return InMemoryStorage()
    return DiskStorage(str(tmp_path / "wal-store"))


def manifest_for(payloads):
    return {name: (len(p), section_digest(p)) for name, p in payloads.items()}


def write_line(store, version, rank, payloads):
    for name, payload in payloads.items():
        store.put_section(version, rank, name, payload)
    store.commit_line(version, rank, sections=manifest_for(payloads))


def payload_of(version, rank, n=96):
    return bytes(((version * 37 + rank * 11 + i) % 256) for i in range(n))


# ---------------------------------------------------------------------------
# Record codec
# ---------------------------------------------------------------------------

class TestRecordCodec:
    def test_roundtrip(self):
        rec = encode_record(SECTION, 7, 3, "state", b"payload-bytes")
        decoded = decode_record(rec, 0)
        assert decoded == (SECTION, 7, 3, "state", b"payload-bytes",
                           len(rec))

    def test_roundtrip_at_offset(self):
        a = encode_record(COMMIT, 1, 0, "", b"m1")
        b = encode_record(DELETE, 2, 1, "", b"")
        buf = a + b
        assert decode_record(buf, len(a))[:5] == (DELETE, 2, 1, "", b"")

    def test_empty_name_and_payload(self):
        rec = encode_record(DELETE, 1, 0, "", b"")
        assert decode_record(rec, 0)[:5] == (DELETE, 1, 0, "", b"")

    @pytest.mark.parametrize("cut", [1, HEADER_LEN - 1, HEADER_LEN,
                                     HEADER_LEN + 2])
    def test_truncated_record_is_torn(self, cut):
        rec = encode_record(SECTION, 1, 0, "state", b"0123456789")
        assert cut < len(rec)
        assert decode_record(rec[:cut], 0) is None

    def test_bad_magic_is_torn(self):
        rec = bytearray(encode_record(SECTION, 1, 0, "s", b"x"))
        rec[0] ^= 0xFF
        assert decode_record(bytes(rec), 0) is None

    def test_unknown_rtype_is_torn(self):
        rec = bytearray(encode_record(SECTION, 1, 0, "s", b"x"))
        rec[4] = 99
        assert decode_record(bytes(rec), 0) is None

    def test_any_single_bit_flip_is_torn(self):
        rec = encode_record(SECTION, 5, 2, "state", b"payload")
        rng = random.Random(1234)
        for _ in range(64):
            pos = rng.randrange(len(rec))
            flipped = bytearray(rec)
            flipped[pos] ^= 1 << rng.randrange(8)
            assert decode_record(bytes(flipped), 0) is None, (
                f"bit flip at byte {pos} went undetected")


# ---------------------------------------------------------------------------
# Group commit: durability boundary and fsync discipline
# ---------------------------------------------------------------------------

class TestGroupCommit:
    def test_commit_not_durable_until_group_complete(self, backend):
        store = WalStore(backend)
        store.configure(4, procs_per_node=2)
        write_line(store, 1, 0, {"state": payload_of(1, 0)})
        # rank 1 (same node) has not committed: nothing synced, rank 0's
        # commit is staged only
        assert backend.fsync_count == 0
        assert store.committed_map() == {}
        assert store.last_committed_local(0) is None
        # the staged payload is still readable through the store
        assert store.read_section(1, 0, "state") == payload_of(1, 0)
        write_line(store, 1, 1, {"state": payload_of(1, 1)})
        # group complete -> one batched append+sync for node 0
        assert backend.fsync_count == 1
        assert store.committed_map() == {0: [1], 1: [1]}

    def test_one_fsync_per_node_per_line(self, backend):
        nprocs, lines, ppn = 4, 5, 2
        store = WalStore(backend)
        store.configure(nprocs, procs_per_node=ppn)
        for v in range(1, lines + 1):
            for r in range(nprocs):
                write_line(store, v, r, {"state": payload_of(v, r)})
        nodes = nprocs // ppn
        assert backend.fsync_count == nodes * lines
        assert store.group_commits == nodes * lines
        assert store.last_committed_global(nprocs, validate=True) == lines

    def test_scatter_pays_per_object_wal_per_group(self, backend):
        # the engine's reason to exist, pinned at the unit level
        scatter = ScatterStore(type(backend)(
            str(backend.root) + "-scatter") if isinstance(
                backend, DiskStorage) else InMemoryStorage())
        wal = WalStore(backend)
        wal.configure(4, procs_per_node=4)
        for store in (scatter, wal):
            for r in range(4):
                write_line(store, 1, r,
                           {"a": payload_of(1, r), "b": payload_of(2, r)})
        # scatter: 2 sections + 1 marker per rank, one fsync each
        assert scatter.backend.fsync_count == 4 * 3
        assert wal.backend.fsync_count == 1

    def test_flush_makes_partial_group_durable(self, backend):
        store = WalStore(backend)
        store.configure(4, procs_per_node=4)
        write_line(store, 1, 0, {"state": payload_of(1, 0)})
        assert store.committed_map() == {}
        store.flush()
        assert store.committed_map() == {0: [1]}
        assert backend.fsync_count == 1

    def test_flush_rank_touches_only_its_node(self, backend):
        store = WalStore(backend)
        store.configure(4, procs_per_node=2)
        write_line(store, 1, 0, {"state": payload_of(1, 0)})
        write_line(store, 1, 2, {"state": payload_of(1, 2)})
        store.flush_rank(2)  # node 1
        assert store.committed_map() == {2: [1]}
        assert backend.fsync_count == 1

    def test_uneven_last_node_group_size(self, backend):
        # 5 ranks at ppn=2: node 2 holds only rank 4, so its group
        # commits complete with a single rank
        store = WalStore(backend)
        store.configure(5, procs_per_node=2)
        write_line(store, 1, 4, {"state": payload_of(1, 4)})
        assert store.committed_map() == {4: [1]}

    def test_commit_hook_fires_before_flush_decision(self, backend):
        store = WalStore(backend)
        store.configure(2, procs_per_node=2)
        seen = []
        store.commit_hooks[1] = lambda v: seen.append(
            (v, backend.fsync_count))
        write_line(store, 1, 0, {"state": payload_of(1, 0)})
        write_line(store, 1, 1, {"state": payload_of(1, 1)})
        # the hook observed the COMMIT record staged but nothing durable
        assert seen == [(1, 0)]
        assert backend.fsync_count == 1


# ---------------------------------------------------------------------------
# Reads, validation, global queries
# ---------------------------------------------------------------------------

class TestReadPath:
    def test_read_validate_sizes(self, backend):
        store = WalStore(backend)
        store.configure(2, procs_per_node=1)
        payloads = {"state": payload_of(1, 0), "heap": payload_of(9, 9, 300)}
        write_line(store, 1, 0, payloads)
        for name, p in payloads.items():
            assert store.read_section(1, 0, name) == p
            assert store.section_size(1, 0, name) == len(p)
            assert store.has_section(1, 0, name)
        assert not store.has_section(1, 0, "absent")
        with pytest.raises(StorageError):
            store.read_section(1, 0, "absent")
        assert store.validate_line(1, 0, deep=True)
        assert not store.validate_line(2, 0)
        m = store.line_manifest(1, 0)
        assert m["version"] == 1 and set(m["sections"]) == set(payloads)
        assert store.checkpoint_bytes(1, 0) == sum(
            len(p) for p in payloads.values())

    def test_rewritten_section_reads_latest(self, backend):
        store = WalStore(backend)
        store.configure(1, procs_per_node=1)
        store.put_section(1, 0, "state", b"old")
        store.put_section(1, 0, "state", b"newer")
        store.commit_line(1, 0, sections={"state": (5,
                                                    section_digest(b"newer"))})
        assert store.read_section(1, 0, "state") == b"newer"
        assert store.validate_line(1, 0, deep=True)


# ---------------------------------------------------------------------------
# GC: tombstones, segment retirement, compaction
# ---------------------------------------------------------------------------

class TestSegmentGC:
    def test_deleted_line_disappears_from_queries(self, backend):
        store = WalStore(backend)
        store.configure(2, procs_per_node=2)
        for v in (1, 2):
            for r in range(2):
                write_line(store, v, r, {"state": payload_of(v, r)})
        for r in range(2):
            store.delete_line(1, r)
        assert store.committed_map() == {0: [2], 1: [2]}
        assert store.lines_on_storage() == {0: [2], 1: [2]}
        assert not store.has_section(1, 0, "state")

    def test_delete_missing_line_is_noop(self, backend):
        store = WalStore(backend)
        store.configure(1, procs_per_node=1)
        before = backend.write_count
        store.delete_line(42, 0)
        assert backend.write_count == before

    def test_dead_segments_are_unlinked(self, backend):
        # tiny segments: every line rolls the active segment, so GC'd
        # lines leave fully-dead sealed segments behind to retire
        store = WalStore(backend, segment_target_bytes=64)
        store.configure(1, procs_per_node=1)
        for v in range(1, 9):
            write_line(store, v, 0, {"state": payload_of(v, 0)})
            for old in range(1, v - 1):
                store.delete_line(old, 0)
        store.flush()
        assert store.segments_retired > 0
        live = store.lines_on_storage()[0]
        assert live == [7, 8]
        # the backend only holds the segments the index still references
        assert set(backend.list("wal/")) == set(store.segment_names())
        # steady state: <= 2 live lines of storage per rank
        reopened = WalStore(backend)
        assert reopened.lines_on_storage() == {0: [7, 8]}

    def test_mostly_dead_segment_is_compacted(self, backend):
        # roll after every group commit: each line-pair seals its own
        # segment.  Rank 0's payload dwarfs rank 1's, so GCing only rank
        # 0's line leaves the sealed segment mostly dead but not empty —
        # the compaction case, not the unlink case.
        store = WalStore(backend, segment_target_bytes=1)
        store.configure(2, procs_per_node=2)
        big, small = payload_of(1, 0, 1000), payload_of(1, 1, 100)
        write_line(store, 1, 0, {"state": big})
        write_line(store, 1, 1, {"state": small})
        write_line(store, 2, 0, {"state": payload_of(2, 0, 1000)})
        write_line(store, 2, 1, {"state": payload_of(2, 1, 100)})
        store.delete_line(1, 0)
        store.flush()
        assert store.segments_compacted > 0
        assert store.segments_retired == 0
        # compaction moved the surviving line, bitwise
        assert store.read_section(1, 1, "state") == small
        assert store.validate_line(1, 1, deep=True)
        # the next sync makes the moved records durable and unlinks the
        # compacted source segment
        store.flush()
        assert store.segments_retired > 0
        assert store.read_section(1, 1, "state") == small

    def test_retirement_survives_reopen(self, tmp_path):
        backend = DiskStorage(str(tmp_path / "gc"))
        store = WalStore(backend, segment_target_bytes=64)
        store.configure(2, procs_per_node=2)
        for v in range(1, 7):
            for r in range(2):
                write_line(store, v, r, {"state": payload_of(v, r)})
            if v > 2:
                for r in range(2):
                    store.delete_line(v - 2, r)
        store.flush()
        reopened = WalStore(backend)
        reopened.configure(2, procs_per_node=2)
        assert reopened.last_committed_global(2, validate=True) == 6
        assert reopened.lines_on_storage() == {0: [5, 6], 1: [5, 6]}
        for v, r in ((5, 0), (5, 1), (6, 0), (6, 1)):
            assert reopened.read_section(v, r, "state") == payload_of(v, r)


# ---------------------------------------------------------------------------
# Crash semantics and replay
# ---------------------------------------------------------------------------

class TestCrashReplay:
    def test_clean_reopen_is_bitwise(self, tmp_path):
        backend = DiskStorage(str(tmp_path / "wal"))
        store = WalStore(backend)
        store.configure(4, procs_per_node=2)
        for v in (1, 2, 3):
            for r in range(4):
                write_line(store, v, r, {"state": payload_of(v, r)})
        reopened = WalStore(backend)
        reopened.configure(4, procs_per_node=2)
        assert reopened.last_committed_global(4, validate=True) == 3
        for v in (1, 2, 3):
            for r in range(4):
                assert reopened.read_section(v, r, "state") == \
                    payload_of(v, r)
        assert reopened.replays == 1

    def test_crash_loses_staged_tail_and_tears_last_record(self, backend):
        store = WalStore(backend)
        store.configure(4, procs_per_node=2)
        for r in range(4):
            write_line(store, 1, r, {"state": payload_of(1, r)})
        # line 2: node 0 completes its group; node 1 (ranks 2,3) has
        # only rank 2's records staged when rank 2 dies
        write_line(store, 2, 0, {"state": payload_of(2, 0)})
        write_line(store, 2, 1, {"state": payload_of(2, 1)})
        write_line(store, 2, 2, {"state": payload_of(2, 2)})
        store.on_job_end(failed_rank=2)
        # the torn tail was truncated: rank 2's line-2 commit never
        # became durable, so the global recovery line is 1
        assert store.last_committed_global(4, validate=True) == 1
        assert store.committed_map()[0] == [1, 2]
        assert 2 not in store.committed_map().get(2, [])
        assert store.replay_truncated_bytes > 0
        # survivors' lines remain bitwise intact
        for r in range(4):
            assert store.read_section(1, r, "state") == payload_of(1, r)

    def test_crash_with_nothing_staged_keeps_index(self, backend):
        store = WalStore(backend)
        store.configure(2, procs_per_node=1)
        for r in range(2):
            write_line(store, 1, r, {"state": payload_of(1, r)})
        store.on_job_end(failed_rank=1)
        assert store.last_committed_global(2, validate=True) == 1

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("mode", ["torn", "bitflip", "garbage"])
    def test_randomized_damaged_tail_falls_back_bitwise(
            self, tmp_path, seed, mode):
        """Satellite 4: randomized torn / short / bit-flipped tails.

        Lines 1-3 are durable; line 4's records then land and the
        segment tail covering them is damaged at a random point.  Replay
        must truncate cleanly at the damage, drop line 4, and serve
        lines 1-3 bitwise.
        """
        rng = random.Random(seed * 1009 + hash(mode) % 1000)
        backend = DiskStorage(str(tmp_path / "wal"))
        store = WalStore(backend)
        nprocs = 2
        store.configure(nprocs, procs_per_node=nprocs)  # one node, one seg
        for v in (1, 2, 3):
            for r in range(nprocs):
                write_line(store, v, r, {"state": payload_of(v, r)})
        seg = segment_path(0, 0)
        safe_len = backend.size(seg)
        for r in range(nprocs):
            write_line(store, 4, r, {"state": payload_of(4, r)})
        data = backend.read(seg)
        assert len(data) > safe_len
        # damage a random point inside line 4's byte range
        pos = rng.randrange(safe_len, len(data))
        if mode == "torn":
            damaged = data[:pos]                      # short write
        elif mode == "bitflip":
            buf = bytearray(data)
            buf[pos] ^= 1 << rng.randrange(8)         # media corruption
            damaged = bytes(buf)
        else:
            tail = bytes(rng.randrange(256) for _ in range(23))
            damaged = data[:pos] + tail               # garbage tail
        backend.write(seg, damaged)

        recovered = WalStore(backend)
        recovered.configure(nprocs, procs_per_node=nprocs)
        assert recovered.last_committed_global(nprocs, validate=True) == 3
        for v in (1, 2, 3):
            for r in range(nprocs):
                assert recovered.read_section(v, r, "state") == \
                    payload_of(v, r), f"line {v} rank {r} not bitwise"
        assert recovered.replay_truncated_bytes > 0
        # the damage was physically truncated: the segment ends at a
        # record boundary within the valid prefix, so a further reopen
        # replays to the same index with nothing left to truncate
        again = WalStore(backend)
        again.configure(nprocs, procs_per_node=nprocs)
        assert again.replay_truncated_bytes == 0
        assert again.last_committed_global(nprocs, validate=True) == 3

    def test_fully_corrupt_first_record_drops_segment(self, tmp_path):
        backend = DiskStorage(str(tmp_path / "wal"))
        store = WalStore(backend)
        store.configure(1, procs_per_node=1)
        write_line(store, 1, 0, {"state": payload_of(1, 0)})
        seg = segment_path(0, 0)
        data = bytearray(backend.read(seg))
        data[0] ^= 0xFF
        backend.write(seg, bytes(data))
        recovered = WalStore(backend)
        assert recovered.committed_map() == {}
        assert not backend.exists(seg)  # empty valid prefix: unlinked


# ---------------------------------------------------------------------------
# Store-layer parity and normalization
# ---------------------------------------------------------------------------

class TestStoreParity:
    def test_wal_matches_scatter_oracle(self, backend):
        scatter = ScatterStore(InMemoryStorage())
        wal = WalStore(backend)
        wal.configure(3, procs_per_node=2)
        for store in (scatter, wal):
            for v in (1, 2, 3):
                for r in range(3):
                    write_line(store, v, r, {"state": payload_of(v, r),
                                             "heap": payload_of(v + 5, r)})
            for r in range(3):
                store.delete_line(1, r)
            store.flush()
        assert wal.committed_map() == scatter.committed_map()
        assert wal.lines_on_storage() == scatter.lines_on_storage()
        assert (wal.last_committed_global(3, validate=True)
                == scatter.last_committed_global(3, validate=True) == 3)
        for v in (2, 3):
            for r in range(3):
                for name in ("state", "heap"):
                    assert (wal.read_section(v, r, name)
                            == scatter.read_section(v, r, name))
                assert (wal.checkpoint_bytes(v, r)
                        == scatter.checkpoint_bytes(v, r))

    def test_as_store_auto_detects_wal_layout(self, backend):
        store = WalStore(backend)
        store.configure(2, procs_per_node=2)
        for r in range(2):
            write_line(store, 1, r, {"state": payload_of(1, r)})
        opened = as_store(backend, procs_per_node=2, nprocs=2)
        assert isinstance(opened, WalStore)
        assert opened.last_committed_global(2, validate=True) == 1

    def test_as_store_wraps_empty_backend_as_scatter(self):
        assert isinstance(as_store(InMemoryStorage()), ScatterStore)

    def test_as_store_passes_stores_through(self, backend):
        store = WalStore(backend)
        assert as_store(store, procs_per_node=2, nprocs=4) is store
        assert store._procs_per_node == 2
