"""Asynchronous drain daemon model."""

import pytest

from repro.mpi.timemodel import TESTING
from repro.storage.drain import DrainDaemon, DrainReport


def test_remote_after_local():
    d = DrainDaemon(TESTING, drain_streams=2)
    report = d.drain([0.0, 0.0, 0.1], [1000, 2000, 3000])
    for local, remote in zip(report.local_done, report.remote_done):
        assert remote > local
    assert report.line_durable_at == max(report.remote_done)


def test_streams_limit_concurrency():
    machine = TESTING.with_overrides(remote_disk_bandwidth=1e6,
                                     disk_latency=0.0,
                                     disk_bandwidth=1e12)
    # 4 files of 1 MB each = 1 s of remote work apiece
    sizes = [1_000_000] * 4
    serial = DrainDaemon(machine, drain_streams=1).drain([0.0] * 4, sizes)
    parallel = DrainDaemon(machine, drain_streams=4).drain([0.0] * 4, sizes)
    assert serial.line_durable_at == pytest.approx(4.0, rel=0.01)
    assert parallel.line_durable_at == pytest.approx(1.0, rel=0.01)


def test_synchronous_penalty_positive_when_remote_slower():
    machine = TESTING.with_overrides(remote_disk_bandwidth=1e6,
                                     disk_bandwidth=1e9)
    report = DrainDaemon(machine).drain([0.0], [10_000_000])
    assert report.synchronous_penalty > 0


def test_input_validation():
    with pytest.raises(ValueError):
        DrainDaemon(TESTING, drain_streams=0)
    with pytest.raises(ValueError):
        DrainDaemon(TESTING).drain([0.0], [1, 2])


def test_empty_drain():
    report = DrainDaemon(TESTING).drain([], [])
    assert report.line_durable_at == 0.0
