"""Asynchronous drain daemon model and the live virtual-time disk device."""

import pytest

from repro.mpi.timemodel import TESTING
from repro.storage.drain import DrainDaemon, DrainDevice, DrainReport


class TestDrainDevice:
    def test_completion_time_matches_disk_model(self):
        dev = DrainDevice(TESTING, nprocs=2)
        done = dev.submit(0, 1000, now=1.0)
        assert done == pytest.approx(1.0 + TESTING.disk_write_time(1000))

    def test_fifo_queueing_on_one_node(self):
        machine = TESTING.with_overrides(procs_per_node=2,
                                         disk_bandwidth=1e6,
                                         disk_latency=0.0)
        dev = DrainDevice(machine, nprocs=2)
        # co-located ranks share the node disk: the second submission
        # queues behind the first even though it was staged earlier
        d0 = dev.submit(0, 1_000_000, now=0.0)    # 1s of disk work
        d1 = dev.submit(1, 1_000_000, now=0.0)
        assert d0 == pytest.approx(1.0)
        assert d1 == pytest.approx(2.0)
        assert dev.busy_until(0) == pytest.approx(2.0)

    def test_nodes_are_independent(self):
        machine = TESTING.with_overrides(procs_per_node=1,
                                         disk_bandwidth=1e6,
                                         disk_latency=0.0)
        dev = DrainDevice(machine, nprocs=2)
        d0 = dev.submit(0, 1_000_000, now=0.0)
        d1 = dev.submit(1, 1_000_000, now=0.0)   # its own node disk
        assert d0 == pytest.approx(1.0)
        assert d1 == pytest.approx(1.0)

    def test_idle_disk_starts_at_submission_time(self):
        dev = DrainDevice(TESTING, nprocs=1)
        dev.submit(0, 1000, now=0.0)
        late = dev.submit(0, 1000, now=100.0)    # disk long idle again
        assert late == pytest.approx(100.0 + TESTING.disk_write_time(1000))

    def test_accounting_and_validation(self):
        dev = DrainDevice(TESTING, nprocs=4)
        dev.submit(0, 10, now=0.0)
        dev.submit(3, 20, now=0.0)
        assert dev.submissions == 2
        assert dev.submitted_bytes == 30
        with pytest.raises(ValueError):
            dev.submit(0, -1, now=0.0)
        with pytest.raises(ValueError):
            DrainDevice(TESTING, nprocs=0)


def test_remote_after_local():
    d = DrainDaemon(TESTING, drain_streams=2)
    report = d.drain([0.0, 0.0, 0.1], [1000, 2000, 3000])
    for local, remote in zip(report.local_done, report.remote_done):
        assert remote > local
    assert report.line_durable_at == max(report.remote_done)


def test_streams_limit_concurrency():
    machine = TESTING.with_overrides(remote_disk_bandwidth=1e6,
                                     disk_latency=0.0,
                                     disk_bandwidth=1e12)
    # 4 files of 1 MB each = 1 s of remote work apiece
    sizes = [1_000_000] * 4
    serial = DrainDaemon(machine, drain_streams=1).drain([0.0] * 4, sizes)
    parallel = DrainDaemon(machine, drain_streams=4).drain([0.0] * 4, sizes)
    assert serial.line_durable_at == pytest.approx(4.0, rel=0.01)
    assert parallel.line_durable_at == pytest.approx(1.0, rel=0.01)


def test_synchronous_penalty_positive_when_remote_slower():
    machine = TESTING.with_overrides(remote_disk_bandwidth=1e6,
                                     disk_bandwidth=1e9)
    report = DrainDaemon(machine).drain([0.0], [10_000_000])
    assert report.synchronous_penalty > 0


def test_input_validation():
    with pytest.raises(ValueError):
        DrainDaemon(TESTING, drain_streams=0)
    with pytest.raises(ValueError):
        DrainDaemon(TESTING).drain([0.0], [1, 2])


def test_empty_drain():
    report = DrainDaemon(TESTING).drain([], [])
    assert report.line_durable_at == 0.0
