"""Path-prefix namespace wrapper: isolation, escapes, delegation."""

from __future__ import annotations

import pytest

from repro.storage import InMemoryStorage, StorageError, WalStore
from repro.storage.namespace import PrefixBackend, tenant_backend


class TestPrefixMapping:
    def test_writes_land_under_the_prefix(self, storage):
        ns = PrefixBackend(storage, "tenants/alice")
        ns.write("ckpt/a", b"payload")
        assert storage.read("tenants/alice/ckpt/a") == b"payload"
        assert ns.read("ckpt/a") == b"payload"

    def test_list_strips_the_prefix(self, storage):
        ns = PrefixBackend(storage, "tenants/alice")
        ns.write("ckpt/a", b"1")
        ns.write("ckpt/b", b"2")
        storage.write("tenants/bob/ckpt/a", b"3")
        assert ns.list("ckpt/") == ["ckpt/a", "ckpt/b"]
        # partial-name prefixes keep their startswith semantics
        assert ns.list("ckpt/a") == ["ckpt/a"]

    def test_size_exists_delete(self, storage):
        ns = PrefixBackend(storage, "ns")
        ns.write("x", b"12345")
        assert ns.exists("x") and ns.size("x") == 5
        ns.delete("x")
        assert not ns.exists("x")
        assert not storage.exists("ns/x")

    def test_append_stream_api_delegates(self, storage):
        ns = PrefixBackend(storage, "ns")
        assert ns.append("log", b"aaaa") == 0
        assert ns.append("log", b"bb") == 4
        ns.sync("log")
        assert ns.read_range("log", 2, 3) == b"aab"
        assert storage.read("ns/log") == b"aaaabb"

    def test_total_bytes_confined_to_namespace(self, storage):
        ns = PrefixBackend(storage, "ns")
        ns.write("a", b"123")
        storage.write("elsewhere", b"xxxxxxxx")
        assert ns.total_bytes() == 3


class TestIsolation:
    def test_tenants_cannot_see_each_other(self, storage):
        alice = tenant_backend(storage, "alice")
        bob = tenant_backend(storage, "bob")
        alice.write("secret", b"a-bytes")
        assert not bob.exists("secret")
        with pytest.raises(StorageError):
            bob.read("secret")
        assert bob.list() == []

    def test_dotdot_cannot_escape_the_namespace(self, storage):
        storage.write("other/victim", b"v")
        ns = PrefixBackend(storage, "ns")
        with pytest.raises(StorageError):
            ns.read("../other/victim")
        with pytest.raises(StorageError):
            ns.write("../../other/victim", b"clobbered")
        assert storage.read("other/victim") == b"v"

    def test_interior_dotdot_stays_inside(self, storage):
        ns = PrefixBackend(storage, "ns")
        ns.write("a/../b", b"1")   # normalizes to ns/b
        assert storage.read("ns/b") == b"1"

    def test_tenant_name_validation(self, storage):
        for bad in ("", ".", "..", "a/b", "../a"):
            with pytest.raises(ValueError):
                tenant_backend(storage, bad)


class TestAccountingAndLayering:
    def test_wrapper_keeps_its_own_counters(self, storage):
        ns = PrefixBackend(storage, "ns")
        storage.write("outside", b"123456")
        ns.write("a", b"1234")
        ns.append("log", b"xy")
        ns.sync("log")
        ns.read("a")
        assert ns.write_count == 2
        assert ns.written_bytes == 6
        assert ns.fsync_count == 2      # one atomic write + one sync
        assert ns.read_count == 1
        # the inner backend still counts the aggregate
        assert storage.write_count == 3

    def test_shared_across_fork_delegates(self, storage, tmp_path):
        from repro.storage import DiskStorage
        assert PrefixBackend(storage, "ns").shared_across_fork is False
        disk = DiskStorage(str(tmp_path / "root"))
        assert PrefixBackend(disk, "ns").shared_across_fork is True

    def test_wal_store_over_a_namespace(self, storage):
        """The WAL engine runs unmodified over a namespaced backend."""
        ns = PrefixBackend(storage, "tenants/alice")
        wal = WalStore(ns)
        wal.configure(nprocs=1)
        wal.put_section(1, 0, "state", b"state-bytes")
        wal.commit_line(1, 0)
        wal.flush()
        assert wal.last_committed_global(1) == 1
        # every byte the WAL wrote is confined to the namespace
        assert storage.list("tenants/alice/")
        assert all(p.startswith("tenants/alice/")
                   for p in storage.list(""))
