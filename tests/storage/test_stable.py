"""Storage backends."""

import pytest

from repro.storage.stable import DiskStorage, InMemoryStorage, StorageError


@pytest.fixture(params=["memory", "disk"])
def backend(request, tmp_path):
    if request.param == "memory":
        return InMemoryStorage()
    return DiskStorage(str(tmp_path / "store"))


class TestBackends:
    def test_write_read(self, backend):
        backend.write("a/b/c", b"payload")
        assert backend.read("a/b/c") == b"payload"

    def test_overwrite(self, backend):
        backend.write("k", b"v1")
        backend.write("k", b"v2")
        assert backend.read("k") == b"v2"

    def test_missing_read(self, backend):
        with pytest.raises(StorageError):
            backend.read("nope")

    def test_exists(self, backend):
        assert not backend.exists("x")
        backend.write("x", b"")
        assert backend.exists("x")

    def test_delete(self, backend):
        backend.write("x", b"1")
        backend.delete("x")
        assert not backend.exists("x")
        with pytest.raises(StorageError):
            backend.delete("x")

    def test_list_prefix(self, backend):
        backend.write("ckpt/v1/rank0/app", b"1")
        backend.write("ckpt/v1/rank1/app", b"2")
        backend.write("other/file", b"3")
        assert backend.list("ckpt/v1/") == [
            "ckpt/v1/rank0/app", "ckpt/v1/rank1/app"]
        assert len(backend.list()) == 3

    def test_total_bytes(self, backend):
        backend.write("a", b"123")
        backend.write("b", b"4567")
        assert backend.total_bytes() == 7


def test_memory_stats():
    s = InMemoryStorage()
    s.write("a", b"12")
    s.write("b", b"345")
    assert s.write_count == 2
    assert s.written_bytes == 5


def test_disk_path_escape_rejected(tmp_path):
    s = DiskStorage(str(tmp_path / "root"))
    with pytest.raises(StorageError):
        s.write("../evil", b"x")
    with pytest.raises(StorageError):
        s.write("/abs", b"x")


def test_disk_storage_survives_reopen(tmp_path):
    root = str(tmp_path / "store")
    DiskStorage(root).write("k", b"persisted")
    assert DiskStorage(root).read("k") == b"persisted"
