"""Storage backends."""

import threading

import pytest

from repro.storage.stable import DiskStorage, InMemoryStorage, StorageError


@pytest.fixture(params=["memory", "disk"])
def backend(request, tmp_path):
    if request.param == "memory":
        return InMemoryStorage()
    return DiskStorage(str(tmp_path / "store"))


class TestBackends:
    def test_write_read(self, backend):
        backend.write("a/b/c", b"payload")
        assert backend.read("a/b/c") == b"payload"

    def test_overwrite(self, backend):
        backend.write("k", b"v1")
        backend.write("k", b"v2")
        assert backend.read("k") == b"v2"

    def test_missing_read(self, backend):
        with pytest.raises(StorageError):
            backend.read("nope")

    def test_exists(self, backend):
        assert not backend.exists("x")
        backend.write("x", b"")
        assert backend.exists("x")

    def test_delete(self, backend):
        backend.write("x", b"1")
        backend.delete("x")
        assert not backend.exists("x")
        with pytest.raises(StorageError):
            backend.delete("x")

    def test_list_prefix(self, backend):
        backend.write("ckpt/v1/rank0/app", b"1")
        backend.write("ckpt/v1/rank1/app", b"2")
        backend.write("other/file", b"3")
        assert backend.list("ckpt/v1/") == [
            "ckpt/v1/rank0/app", "ckpt/v1/rank1/app"]
        assert len(backend.list()) == 3

    def test_total_bytes(self, backend):
        backend.write("a", b"123")
        backend.write("b", b"4567")
        assert backend.total_bytes() == 7

    def test_size_without_read(self, backend):
        backend.write("a", b"12345")
        assert backend.size("a") == 5
        backend.write("a", b"")
        assert backend.size("a") == 0
        with pytest.raises(StorageError):
            backend.size("missing")


def test_memory_stats():
    s = InMemoryStorage()
    s.write("a", b"12")
    s.write("b", b"345")
    assert s.write_count == 2
    assert s.written_bytes == 5


def test_disk_path_escape_rejected(tmp_path):
    s = DiskStorage(str(tmp_path / "root"))
    with pytest.raises(StorageError):
        s.write("../evil", b"x")
    with pytest.raises(StorageError):
        s.write("/abs", b"x")


def test_disk_storage_survives_reopen(tmp_path):
    root = str(tmp_path / "store")
    DiskStorage(root).write("k", b"persisted")
    assert DiskStorage(root).read("k") == b"persisted"


def test_disk_concurrent_writers_are_atomic(tmp_path):
    """Regression: ``write`` used to hold a backend-global mutex across
    ``fsync``, serializing every concurrent rank's commit — and a shared
    fixed ``.tmp`` name would have let parallel writers corrupt each
    other.  With unique temp names + atomic ``os.replace``, N threads
    hammering overlapping keys must leave every key holding exactly one
    complete payload, with no temp debris."""
    store = DiskStorage(str(tmp_path / "store"))
    nthreads, nwrites, nkeys = 8, 40, 5
    errors = []

    def writer(tid):
        try:
            for i in range(nwrites):
                key = f"ckpt/k{i % nkeys}"
                store.write(key, f"payload-{tid}-{i}".encode() * 50)
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(t,))
               for t in range(nthreads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    for i in range(nkeys):
        data = store.read(f"ckpt/k{i}")
        # one complete write won, never an interleaving or a torn file:
        # each write is one unit repeated 50x
        assert len(data) % 50 == 0
        unit = data[:len(data) // 50]
        assert unit.startswith(b"payload-")
        assert data == unit * 50
    # no leftover temp files on disk, and list() never reports them
    assert not [p for p in store.list() if p.endswith(".tmp")]
    import os
    leftovers = [f for _, _, files in os.walk(store.root)
                 for f in files if f.endswith(".tmp")]
    assert leftovers == []


def test_disk_reader_sees_old_or_new_payload(tmp_path):
    """Readers racing a writer observe a complete payload (atomic
    replace), never a partial one."""
    store = DiskStorage(str(tmp_path / "store"))
    a, b = b"A" * 4096, b"B" * 4096
    store.write("k", a)
    stop = threading.Event()
    bad = []

    def reader():
        while not stop.is_set():
            data = store.read("k")
            if data != a and data != b:
                bad.append(len(data))

    t = threading.Thread(target=reader)
    t.start()
    for _ in range(200):
        store.write("k", b)
        store.write("k", a)
    stop.set()
    t.join()
    assert bad == []
