"""Commit manifest and global last-committed-version logic."""

import pytest

from repro.storage import (
    InMemoryStorage, checkpoint_bytes, commit_path, committed_versions,
    last_committed_global, last_committed_local, record_commit, section_path,
)


@pytest.fixture
def store():
    return InMemoryStorage()


def test_paths():
    assert section_path(3, 1, "app") == "ckpt/v3/rank1/app"
    assert commit_path(3, 1) == "ckpt/v3/rank1/COMMIT"


def test_commit_and_query(store):
    record_commit(store, 1, 0)
    record_commit(store, 2, 0)
    assert committed_versions(store, 0) == [1, 2]
    assert last_committed_local(store, 0) == 2
    assert last_committed_local(store, 1) is None


def test_global_requires_all_ranks(store):
    record_commit(store, 1, 0)
    assert last_committed_global(store, 2) is None
    record_commit(store, 1, 1)
    assert last_committed_global(store, 2) == 1


def test_global_is_min_of_maxima(store):
    for v in (1, 2, 3):
        record_commit(store, v, 0)
    for v in (1, 2):
        record_commit(store, v, 1)
    assert last_committed_global(store, 2) == 2


def test_global_with_gap_at_min(store):
    # rank 0 committed only v2 (v1 lost), rank 1 only v1: no common version
    record_commit(store, 2, 0)
    record_commit(store, 1, 1)
    assert last_committed_global(store, 2) is None


def test_checkpoint_bytes_excludes_marker(store):
    store.write(section_path(1, 0, "app"), b"12345")
    store.write(section_path(1, 0, "late_registry"), b"678")
    record_commit(store, 1, 0)
    assert checkpoint_bytes(store, 1, 0) == 8
