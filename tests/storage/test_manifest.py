"""Commit manifest and global last-committed-version logic."""

import pytest

from repro.storage import (
    InMemoryStorage, StorageError, checkpoint_bytes, commit_path,
    committed_map, committed_versions, delete_line, last_committed_global,
    last_committed_local, line_manifest, record_commit, section_digest,
    section_path, validate_line,
)
from repro.storage.manifest import parse_commit_record


@pytest.fixture
def store():
    return InMemoryStorage()


def write_line(store, version, rank, sections):
    """A committed line with a digest-carrying manifest marker."""
    manifest = {}
    for name, payload in sections.items():
        store.write(section_path(version, rank, name), payload)
        manifest[name] = (len(payload), section_digest(payload))
    record_commit(store, version, rank, sections=manifest)


def test_paths():
    assert section_path(3, 1, "app") == "ckpt/v3/rank1/app"
    assert commit_path(3, 1) == "ckpt/v3/rank1/COMMIT"


def test_commit_and_query(store):
    record_commit(store, 1, 0)
    record_commit(store, 2, 0)
    assert committed_versions(store, 0) == [1, 2]
    assert last_committed_local(store, 0) == 2
    assert last_committed_local(store, 1) is None


def test_global_requires_all_ranks(store):
    record_commit(store, 1, 0)
    assert last_committed_global(store, 2) is None
    record_commit(store, 1, 1)
    assert last_committed_global(store, 2) == 1


def test_global_is_min_of_maxima(store):
    for v in (1, 2, 3):
        record_commit(store, v, 0)
    for v in (1, 2):
        record_commit(store, v, 1)
    assert last_committed_global(store, 2) == 2


def test_global_with_gap_at_min(store):
    # rank 0 committed only v2 (v1 lost), rank 1 only v1: no common version
    record_commit(store, 2, 0)
    record_commit(store, 1, 1)
    assert last_committed_global(store, 2) is None


def test_checkpoint_bytes_excludes_marker(store):
    store.write(section_path(1, 0, "app"), b"12345")
    store.write(section_path(1, 0, "late_registry"), b"678")
    record_commit(store, 1, 0)
    assert checkpoint_bytes(store, 1, 0) == 8


def test_checkpoint_bytes_prefers_manifest(store):
    write_line(store, 1, 0, {"app": b"12345", "late_registry": b"678"})
    # a stale section from a pre-crash attempt must not be counted
    store.write(section_path(1, 0, "stale_leftover"), b"x" * 100)
    assert checkpoint_bytes(store, 1, 0) == 8


# ---------------------------------------------------------------------------
# Crash-consistent manifests and torn-line validation
# ---------------------------------------------------------------------------

class TestManifestValidation:
    def test_manifest_roundtrip(self, store):
        write_line(store, 3, 1, {"app": b"abc", "counters": b"defg"})
        record = line_manifest(store, 3, 1)
        assert record["version"] == 3 and record["rank"] == 1
        assert set(record["sections"]) == {"app", "counters"}
        assert record["sections"]["app"][0] == 3

    def test_legacy_marker_validates_vacuously(self, store):
        store.write(section_path(1, 0, "app"), b"abc")
        record_commit(store, 1, 0)  # bare b"ok"
        assert line_manifest(store, 1, 0) is None
        assert validate_line(store, 1, 0, deep=True)

    def test_valid_line_passes_deep_validation(self, store):
        write_line(store, 1, 0, {"app": b"abc", "counters": b"defg"})
        assert validate_line(store, 1, 0)
        assert validate_line(store, 1, 0, deep=True)

    def test_missing_section_is_torn(self, store):
        write_line(store, 1, 0, {"app": b"abc", "counters": b"defg"})
        store.delete(section_path(1, 0, "counters"))
        assert not validate_line(store, 1, 0)

    def test_truncated_section_is_torn(self, store):
        write_line(store, 1, 0, {"app": b"abcdef"})
        store.write(section_path(1, 0, "app"), b"abc")  # torn write
        assert not validate_line(store, 1, 0)

    def test_size_preserving_corruption_needs_deep(self, store):
        write_line(store, 1, 0, {"app": b"abcdef"})
        store.write(section_path(1, 0, "app"), b"abcdeX")
        assert validate_line(store, 1, 0)            # shallow: size ok
        assert not validate_line(store, 1, 0, deep=True)

    def test_missing_marker_is_not_committed(self, store):
        store.write(section_path(1, 0, "app"), b"abc")
        assert not validate_line(store, 1, 0)

    def test_validated_local_falls_back_past_torn_line(self, store):
        write_line(store, 1, 0, {"app": b"v1"})
        write_line(store, 2, 0, {"app": b"v2"})
        store.delete(section_path(2, 0, "app"))      # tear the newest
        assert last_committed_local(store, 0) == 2   # raw scan still sees it
        assert last_committed_local(store, 0, validate=True, deep=True) == 1

    def test_validated_global_skips_torn_lines(self, store):
        for rank in (0, 1):
            write_line(store, 1, rank, {"app": b"v1"})
            write_line(store, 2, rank, {"app": b"v2"})
        store.write(section_path(2, 1, "app"), b"v")  # truncated: torn
        assert last_committed_global(store, 2) == 2
        assert last_committed_global(store, 2, validate=True) == 1

    def test_torn_commit_marker_is_a_storage_error(self):
        # Regression (found by the fault fuzzer): a COMMIT marker torn
        # mid-write is neither the legacy token nor a parsable manifest;
        # the deserializer's IndexError used to escape raw and crash
        # every recovery query that touched the line.
        store = InMemoryStorage()
        write_line(store, 1, 0, {"app": b"abcdef"})
        whole = store.read(commit_path(1, 0))
        for cut in (1, len(whole) // 2, len(whole) - 1):
            store.write(commit_path(1, 0), whole[:cut])
            with pytest.raises(StorageError, match="corrupt COMMIT"):
                parse_commit_record(store.read(commit_path(1, 0)))

    def test_torn_commit_marker_fails_validation_not_the_program(self):
        store = InMemoryStorage()
        write_line(store, 1, 0, {"app": b"v1"})
        write_line(store, 2, 0, {"app": b"v2"})
        torn = store.read(commit_path(2, 0))[:5]
        store.write(commit_path(2, 0), torn)
        assert not validate_line(store, 2, 0)
        assert line_manifest(store, 2, 0) is None
        # recovery queries fall back past the torn line instead of dying
        assert last_committed_local(store, 0, validate=True) == 1
        assert last_committed_global(store, 1, validate=True) == 1


def test_delete_line_removes_sections_and_marker(store):
    write_line(store, 1, 0, {"app": b"abc", "counters": b"d"})
    write_line(store, 2, 0, {"app": b"abc2"})
    delete_line(store, 1, 0)
    assert store.list("ckpt/v1/") == []
    assert committed_versions(store, 0) == [2]
    delete_line(store, 1, 0)  # idempotent


# ---------------------------------------------------------------------------
# Single-pass global queries (the O(nprocs x objects) restore fix)
# ---------------------------------------------------------------------------

class CountingStorage(InMemoryStorage):
    """Counts listing passes to pin the single-pass property."""

    def __init__(self):
        super().__init__()
        self.list_calls = 0

    def list(self, prefix=""):
        self.list_calls += 1
        return super().list(prefix)


def test_committed_map_single_listing_pass():
    store = CountingStorage()
    for rank in range(4):
        for v in (1, 2, 3):
            record_commit(store, v, rank)
    store.list_calls = 0
    cmap = committed_map(store)
    assert store.list_calls == 1
    assert cmap == {r: [1, 2, 3] for r in range(4)}


def test_last_committed_global_256_ranks_one_pass():
    """Restore-scale micro-benchmark: the global query over a 256-rank
    store (3 lines, ~2k objects) must make exactly one listing pass —
    the old implementation re-listed and regex-scanned the whole
    namespace once per rank (512+ passes here)."""
    nprocs = 256
    store = CountingStorage()
    for rank in range(nprocs):
        for v in (1, 2, 3):
            store.write(section_path(v, rank, "app"), b"x" * 8)
            record_commit(store, v, rank)
    store.list_calls = 0
    assert last_committed_global(store, nprocs) == 3
    assert store.list_calls == 1
    # the validated flavour adds per-line stat checks, not extra listings
    store.list_calls = 0
    assert last_committed_global(store, nprocs, validate=True) == 3
    assert store.list_calls == 1
