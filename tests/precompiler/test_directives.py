"""Directive parsing and source preprocessing."""

import pytest

from repro.precompiler.directives import (
    DirectiveError, SENTINEL_LOOP, SENTINEL_SAVE, SENTINEL_SETUP_END,
    preprocess,
)


def test_checkpoint_directive():
    src, n = preprocess("x = 1\n    # ccc: checkpoint\ny = 2")
    assert n == 1
    assert "    ctx.checkpoint()" in src.splitlines()


def test_save_directive():
    src, n = preprocess("# ccc: save(a, b)")
    assert src == f"{SENTINEL_SAVE}('a', 'b')"


def test_setup_end_directive():
    src, _ = preprocess("  # ccc: setup-end")
    assert src.strip() == f"{SENTINEL_SETUP_END}()"


def test_loop_directive():
    src, _ = preprocess("# ccc: loop(step)")
    assert src == f"{SENTINEL_LOOP}('step')"


def test_line_numbers_preserved():
    original = "a = 1\n# ccc: checkpoint\nb = 2\n# ccc: save(x)\nc = 3"
    processed, n = preprocess(original)
    assert n == 2
    assert len(processed.splitlines()) == len(original.splitlines())
    assert processed.splitlines()[0] == "a = 1"
    assert processed.splitlines()[4] == "c = 3"


def test_unknown_directive():
    with pytest.raises(DirectiveError):
        preprocess("# ccc: frobnicate")


def test_empty_save():
    with pytest.raises(DirectiveError):
        preprocess("# ccc: save( )")


def test_trailing_directive_rejected():
    with pytest.raises(DirectiveError):
        preprocess("x = 1  # ccc: checkpoint")


def test_non_directive_comments_untouched():
    src, n = preprocess("# a normal comment\nx = 1")
    assert n == 0
    assert src == "# a normal comment\nx = 1"


def test_call_directive():
    src, n = preprocess("# ccc: call(init)")
    assert n == 1
    assert src == "__ccc_call__('init')"


def test_directive_inside_string_literal_untouched():
    """Regression: the line-based scanner rewrote directive-looking text
    inside multi-line string literals into executable code."""
    original = 'x = """\n# ccc: checkpoint\n"""\n# ccc: checkpoint'
    processed, n = preprocess(original)
    lines = processed.splitlines()
    assert n == 1
    assert lines[1] == "# ccc: checkpoint"      # string content untouched
    assert lines[3] == "ctx.checkpoint()"       # the real directive rewritten


def test_directive_inside_docstring_untouched():
    original = (
        "def f(ctx):\n"
        '    """Doc:\n'
        "    # ccc: save(x)\n"
        '    """\n'
        "    # ccc: checkpoint\n"
    )
    processed, n = preprocess(original)
    assert n == 1
    assert "__ccc_save__" not in processed
    assert processed.splitlines()[2] == "    # ccc: save(x)"


def test_indented_string_directive_not_mistaken_for_trailing():
    """A directive-looking line inside a string must not trigger the
    'must stand on its own line' error either."""
    src, n = preprocess("msg = '''\nx = 1  # ccc: checkpoint\n'''")
    assert n == 0
    assert "ctx.checkpoint" not in src


def test_empty_directive_body_rejected():
    with pytest.raises(DirectiveError, match="malformed"):
        preprocess("# ccc:")


def test_malformed_loop_args():
    with pytest.raises(DirectiveError, match="unknown"):
        preprocess("# ccc: loop()")
    with pytest.raises(DirectiveError, match="unknown"):
        preprocess("# ccc: loop(2bad)")


def test_malformed_call_args():
    with pytest.raises(DirectiveError, match="unknown"):
        preprocess("# ccc: call()")
    with pytest.raises(DirectiveError, match="unknown"):
        preprocess("# ccc: call(a, b)")


def test_malformed_save_args():
    with pytest.raises(DirectiveError):
        preprocess("# ccc: save(1bad)")
