"""Directive parsing and source preprocessing."""

import pytest

from repro.precompiler.directives import (
    DirectiveError, SENTINEL_LOOP, SENTINEL_SAVE, SENTINEL_SETUP_END,
    preprocess,
)


def test_checkpoint_directive():
    src, n = preprocess("x = 1\n    # ccc: checkpoint\ny = 2")
    assert n == 1
    assert "    ctx.checkpoint()" in src.splitlines()


def test_save_directive():
    src, n = preprocess("# ccc: save(a, b)")
    assert src == f"{SENTINEL_SAVE}('a', 'b')"


def test_setup_end_directive():
    src, _ = preprocess("  # ccc: setup-end")
    assert src.strip() == f"{SENTINEL_SETUP_END}()"


def test_loop_directive():
    src, _ = preprocess("# ccc: loop(step)")
    assert src == f"{SENTINEL_LOOP}('step')"


def test_line_numbers_preserved():
    original = "a = 1\n# ccc: checkpoint\nb = 2\n# ccc: save(x)\nc = 3"
    processed, n = preprocess(original)
    assert n == 2
    assert len(processed.splitlines()) == len(original.splitlines())
    assert processed.splitlines()[0] == "a = 1"
    assert processed.splitlines()[4] == "c = 3"


def test_unknown_directive():
    with pytest.raises(DirectiveError):
        preprocess("# ccc: frobnicate")


def test_empty_save():
    with pytest.raises(DirectiveError):
        preprocess("# ccc: save( )")


def test_trailing_directive_rejected():
    with pytest.raises(DirectiveError):
        preprocess("x = 1  # ccc: checkpoint")


def test_non_directive_comments_untouched():
    src, n = preprocess("# a normal comment\nx = 1")
    assert n == 0
    assert src == "# a normal comment\nx = 1"
