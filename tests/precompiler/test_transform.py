"""AST instrumentation: the compile-time transformation end-to-end."""

import numpy as np
import pytest

from repro.core import C3Config, run_fault_tolerant, run_original
from repro.mpi import FaultPlan, FaultSpec
from repro.precompiler import TransformError, instrument
from repro.storage import InMemoryStorage


def simple_app(ctx):
    # ccc: save(x, total)
    x = np.zeros(4)
    total = 0.0
    # ccc: setup-end
    # ccc: loop(it)
    for it in range(10):
        # ccc: checkpoint
        x = x + it
        total = total + float(x.sum())
        ctx.compute(1e-4)
    return total


class TestInstrumentation:
    def test_metadata(self):
        app = instrument(simple_app)
        assert app.__ccc_saved__ == ["total", "x"]
        assert app.__ccc_directives__ == 4
        assert app.__wrapped__ is simple_app

    def test_saved_variables_live_in_state(self):
        app = instrument(simple_app)

        def probe(ctx):
            app(ctx)
            return sorted(k for k in ctx.state if not k.startswith("__"))

        result = run_original(probe, 1)
        result.raise_errors()
        assert result.returns[0] == ["total", "x"]

    def test_loop_is_resumable(self):
        app = instrument(simple_app)

        def probe(ctx):
            counters = []
            real_checkpoint = ctx.checkpoint

            def spy(force=False):
                counters.append(int(ctx.state["__loop_it"]))
                real_checkpoint(force=force)

            ctx.checkpoint = spy
            app(ctx)
            # the counter tracks every iteration while the loop runs, and
            # the completed loop is popped off the position stack
            return counters, "__loop_it" in ctx.state

        result = run_original(probe, 1)
        result.raise_errors()
        counters, still_there = result.returns[0]
        assert counters == list(range(10))
        assert not still_there

    def test_runs_identically_to_plain_logic(self):
        app = instrument(simple_app)
        result = run_original(app, 2)
        result.raise_errors()
        # hand computation: total = sum over it of sum(x_it)
        x = np.zeros(4)
        total = 0.0
        for it in range(10):
            x = x + it
            total += x.sum()
        assert result.returns == [total, total]


class TestRecovery:
    def test_instrumented_app_survives_failure(self):
        app = instrument(simple_app)
        ref = run_original(app, 2)
        ref.raise_errors()
        res = run_fault_tolerant(
            app, 2, storage=InMemoryStorage(),
            config=C3Config(checkpoint_interval=3e-4),
            fault_plan=FaultPlan([FaultSpec(rank=0, at_time=6e-4)]))
        assert res.restarts == 1
        assert res.returns == ref.returns


class TestRejections:
    def test_missing_ctx_parameter(self):
        def no_ctx(x):
            return x

        with pytest.raises(TransformError, match="ctx"):
            instrument(no_ctx)

    def test_leaked_setup_variable(self):
        def leaky(ctx):
            # ccc: save(x)
            x = 1.0
            helper = 2.0
            # ccc: setup-end
            return x + helper  # helper is used but not saved

        with pytest.raises(TransformError, match="helper"):
            instrument(leaky)

    def test_loop_requires_range(self):
        def bad_loop(ctx):
            items = [1, 2]
            # ccc: loop(i)
            for i in items:
                pass

        with pytest.raises(TransformError, match="range"):
            instrument(bad_loop)

    def test_nested_function_rejected_when_touching_saved(self):
        def nested(ctx):
            # ccc: save(x)
            x = 1.0
            # ccc: setup-end
            def inner():
                return x
            return inner()

        with pytest.raises(TransformError):
            instrument(nested)

    def test_ctx_cannot_be_saved(self):
        def bad(ctx):
            # ccc: save(ctx)
            pass

        with pytest.raises(TransformError):
            instrument(bad)


class TestWhileLoops:
    @staticmethod
    def _while_app(ctx):
        # ccc: save(x, n)
        x = 0.0
        n = 0
        # ccc: setup-end
        # ccc: loop(w)
        while n < 8:
            # ccc: checkpoint
            x = x + float(n)
            n = n + 1
            ctx.compute(1e-4)
        return x

    def test_runs_identically_to_plain_logic(self):
        app = instrument(self._while_app)
        result = run_original(app, 1)
        result.raise_errors()
        assert result.returns == [sum(range(8))]

    def test_counter_persisted_and_popped(self):
        app = instrument(self._while_app)

        def probe(ctx):
            app(ctx)
            return "__loop_w" in ctx.state

        result = run_original(probe, 1)
        result.raise_errors()
        assert result.returns[0] is False

    def test_while_survives_failure(self):
        app = instrument(self._while_app)
        ref = run_original(app, 2)
        ref.raise_errors()
        res = run_fault_tolerant(
            app, 2, storage=InMemoryStorage(),
            config=C3Config(checkpoint_interval=2.5e-4),
            fault_plan=FaultPlan([FaultSpec(rank=1, at_time=5e-4)]))
        assert res.restarts == 1
        assert res.returns == ref.returns

    def test_while_else_rejected(self):
        def bad(ctx):
            # ccc: save(n)
            n = 0
            # ccc: setup-end
            # ccc: loop(w)
            while n < 2:
                n = n + 1
            else:
                n = -1

        with pytest.raises(TransformError, match="while/else"):
            instrument(bad)


class TestNestedLoops:
    @staticmethod
    def _nested_app(ctx):
        # ccc: save(acc)
        acc = 0.0
        # ccc: setup-end
        # ccc: loop(outer)
        for i in range(4):
            # ccc: checkpoint
            # ccc: loop(inner)
            for j in range(3):
                # ccc: checkpoint
                acc = acc + float(i * 10 + j)
                ctx.compute(1e-4)
        return acc

    EXPECTED = float(sum(i * 10 + j for i in range(4) for j in range(3)))

    def test_inner_loop_reruns_every_outer_iteration(self):
        app = instrument(self._nested_app)
        result = run_original(app, 1)
        result.raise_errors()
        assert result.returns == [self.EXPECTED]

    def test_position_stack_visible_at_inner_pragma(self):
        app = instrument(self._nested_app)

        def probe(ctx):
            stacks = []
            real_checkpoint = ctx.checkpoint

            def spy(force=False):
                stacks.append((int(ctx.state.get("__loop_outer", -1)),
                               int(ctx.state.get("__loop_inner", -1))))
                real_checkpoint(force=force)

            ctx.checkpoint = spy
            app(ctx)
            return stacks

        result = run_original(probe, 1)
        result.raise_errors()
        stacks = result.returns[0]
        # at the inner pragma both counters are live; at the outer pragma
        # the inner loop has been popped (-1 = absent)
        assert (1, 2) in stacks
        assert (2, -1) in stacks

    @pytest.mark.parametrize("kill_time", [2.5e-4, 6.5e-4, 1.05e-3])
    def test_restart_resumes_full_position_stack(self, kill_time):
        """Kill early / mid / late — the restart must resume at the exact
        (outer, inner) position and still produce the golden answer."""
        app = instrument(self._nested_app)
        ref = run_original(app, 2)
        ref.raise_errors()
        res = run_fault_tolerant(
            app, 2, storage=InMemoryStorage(),
            config=C3Config(checkpoint_interval=2e-4),
            fault_plan=FaultPlan([FaultSpec(rank=0, at_time=kill_time)]))
        assert res.restarts == 1
        assert res.returns == ref.returns


class TestSequentialLoops:
    @staticmethod
    def _seq_app(ctx):
        # ccc: save(acc)
        acc = 0.0
        # ccc: setup-end
        # ccc: loop(a)
        for i in range(3):
            # ccc: checkpoint
            acc = acc + 1.0
            ctx.compute(1e-4)
        # ccc: loop(b)
        for i in range(5):
            # ccc: checkpoint
            acc = acc + 10.0
            ctx.compute(1e-4)
        return acc

    def test_runs_identically_to_plain_logic(self):
        app = instrument(self._seq_app)
        result = run_original(app, 1)
        result.raise_errors()
        assert result.returns == [53.0]

    @pytest.mark.parametrize("kill_time", [1.5e-4, 5e-4, 6.5e-4])
    def test_restart_after_a_loop_completed(self, kill_time):
        """Regression (code review): a restart from a checkpoint taken
        inside the *second* loop must skip the completed first loop, not
        re-run it and corrupt the saved accumulator."""
        app = instrument(self._seq_app)
        ref = run_original(app, 1)
        ref.raise_errors()
        res = run_fault_tolerant(
            app, 1, storage=InMemoryStorage(),
            config=C3Config(checkpoint_interval=1.5e-4),
            fault_plan=FaultPlan([FaultSpec(rank=0, at_time=kill_time)]))
        assert res.restarts == 1
        assert res.returns == ref.returns


class TestTryBlocks:
    def test_loop_directives_inside_try_arms(self):
        """Regression: a loop directive in a try/except/else/finally arm
        leaked its ``__ccc_loop__`` sentinel to runtime as a NameError."""

        def try_app(ctx):
            # ccc: save(acc)
            acc = 0.0
            # ccc: setup-end
            try:
                # ccc: loop(a)
                for i in range(3):
                    acc = acc + 1.0
            except ValueError:
                # ccc: loop(b)
                for i in range(2):
                    acc = acc + 100.0
            else:
                # ccc: loop(c)
                for i in range(2):
                    acc = acc + 10.0
            finally:
                # ccc: loop(d)
                for i in range(2):
                    acc = acc + 0.5
            return acc

        app = instrument(try_app)
        result = run_original(app, 1)
        result.raise_errors()
        assert result.returns == [3.0 + 20.0 + 1.0]

    def test_loop_directive_in_exception_handler_path(self):
        def handler_app(ctx):
            # ccc: save(acc)
            acc = 0.0
            # ccc: setup-end
            try:
                raise ValueError("boom")
            except ValueError:
                # ccc: loop(h)
                for i in range(4):
                    acc = acc + 1.0
            return acc

        app = instrument(handler_app)
        result = run_original(app, 1)
        result.raise_errors()
        assert result.returns == [4.0]

    def test_loop_directive_inside_if_branch(self):
        """Same leak for a directive directly inside an if arm."""

        def branch_app(ctx):
            # ccc: save(acc)
            acc = 0.0
            # ccc: setup-end
            if ctx.rank >= 0:
                # ccc: loop(a)
                for i in range(3):
                    acc = acc + 1.0
            else:
                # ccc: loop(b)
                for i in range(3):
                    acc = acc - 1.0
            return acc

        app = instrument(branch_app)
        result = run_original(app, 1)
        result.raise_errors()
        assert result.returns == [3.0]


def _string_value_app(ctx):
    # ccc: save(msg)
    msg = """directives:
# ccc: checkpoint
done"""
    # ccc: setup-end
    return msg


class TestStringLiterals:
    def test_docstring_directive_text_is_documentation(self):
        """Regression: the line scanner rewrote directive-looking lines
        inside the docstring, corrupting it (and the directive count)."""

        def doc_app(ctx):
            """Usage:

            # ccc: checkpoint

            the line above is documentation, not a directive.
            """
            # ccc: save(x)
            x = 1.0
            # ccc: setup-end
            x = x + 1.0
            return x

        app = instrument(doc_app)
        assert app.__ccc_directives__ == 2
        assert "# ccc: checkpoint" in app.__doc__
        result = run_original(app, 1)
        result.raise_errors()
        assert result.returns == [2.0]

    def test_multiline_string_value_not_corrupted(self):
        app = instrument(_string_value_app)
        result = run_original(app, 1)
        result.raise_errors()
        assert result.returns == ["directives:\n# ccc: checkpoint\ndone"]


class TestScopeAwareRewriting:
    def test_comprehension_target_shadows_saved_name(self):
        """Regression: the rewriter turned a comprehension-bound name that
        shadows a saved variable into a ``ctx.state`` target (source-level
        a SyntaxError; as a constructed AST it compiles and *clobbers the
        saved variable* with the last element)."""

        def comp_app(ctx):
            # ccc: save(xs, total)
            xs = [1.0, 2.0, 3.0]
            total = 0.0
            # ccc: setup-end
            scaled = [xs * 2.0 for xs in xs]      # target shadows saved list
            total = total + sum(scaled)
            keyed = {k: total for k in ("a",)}    # free name still rewritten
            return (scaled, keyed["a"], xs)

        app = instrument(comp_app)
        result = run_original(app, 1)
        result.raise_errors()
        scaled, keyed_total, xs = result.returns[0]
        assert scaled == [2.0, 4.0, 6.0]
        assert keyed_total == 12.0
        # the saved list must survive the comprehension untouched
        assert xs == [1.0, 2.0, 3.0]

    def test_lambda_param_shadows_saved_name(self):
        def lambda_app(ctx):
            # ccc: save(a, b)
            a = 2.0
            b = 3.0
            # ccc: setup-end
            f = lambda a: a * 10.0    # noqa: E731 - param shadows saved 'a'
            g = lambda: a + b         # noqa: E731 - frees hit ctx.state
            return (f(1.0), g())

        app = instrument(lambda_app)
        result = run_original(app, 1)
        result.raise_errors()
        assert result.returns[0] == (10.0, 5.0)

    def test_generator_expression_shadowing(self):
        def gen_app(ctx):
            # ccc: save(n)
            n = 3.0
            # ccc: setup-end
            return sum(n * 0.0 + i for n, i in ((9.0, 1), (9.0, 2))) + n

        app = instrument(gen_app)
        result = run_original(app, 1)
        result.raise_errors()
        assert result.returns == [6.0]


CALL_LOG = []


def expensive_init(n):
    CALL_LOG.append(n)
    return np.full(n, 7.0)


class TestCallGuards:
    @staticmethod
    def _call_app(ctx):
        # ccc: save(acc)
        acc = 0.0
        # ccc: setup-end
        # ccc: call(init)
        base = expensive_init(4)
        # ccc: loop(i)
        for i in range(6):
            # ccc: checkpoint
            acc = acc + float(base.sum())
            ctx.compute(1e-4)
        return acc

    def test_target_becomes_saved(self):
        app = instrument(self._call_app)
        assert app.__ccc_saved__ == ["acc", "base"]

    def test_call_runs_once_per_job(self):
        app = instrument(self._call_app)
        CALL_LOG.clear()
        result = run_original(app, 1)
        result.raise_errors()
        assert result.returns == [6 * 28.0]
        assert CALL_LOG == [4]

    def test_restart_skips_the_call_and_reuses_the_result(self):
        app = instrument(self._call_app)
        CALL_LOG.clear()
        res = run_fault_tolerant(
            app, 1, storage=InMemoryStorage(),
            config=C3Config(checkpoint_interval=2e-4),
            fault_plan=FaultPlan([FaultSpec(rank=0, at_time=4e-4)]))
        assert res.restarts == 1
        assert res.returns == [6 * 28.0]
        # one call in the killed execution, zero in the restarted one
        assert CALL_LOG == [4]

    def test_tuple_targets(self):
        def pair_app(ctx):
            # ccc: call(init)
            lo, hi = divmod(7, 2)
            return lo + hi

        app = instrument(pair_app)
        assert app.__ccc_saved__ == ["hi", "lo"]
        result = run_original(app, 1)
        result.raise_errors()
        assert result.returns == [4]

    def test_call_must_precede_assignment_of_a_call(self):
        def bad(ctx):
            # ccc: call(x)
            y = 1 + 1
            return y

        with pytest.raises(TransformError, match="call"):
            instrument(bad)


class TestDirectivePlacementErrors:
    def test_two_directives_in_a_row(self):
        def bad(ctx):
            # ccc: loop(a)
            # ccc: loop(b)
            for i in range(2):
                pass

        with pytest.raises(TransformError, match="in a row"):
            instrument(bad)

    def test_loop_followed_by_non_loop(self):
        def bad(ctx):
            # ccc: loop(a)
            x = 1
            return x

        with pytest.raises(TransformError, match="for or while"):
            instrument(bad)

    def test_trailing_loop_directive(self):
        def bad(ctx):
            x = 1
            # ccc: loop(a)

        with pytest.raises(TransformError, match="no following"):
            instrument(bad)

    def test_duplicate_setup_end(self):
        def bad(ctx):
            # ccc: save(x)
            x = 1.0
            # ccc: setup-end
            x = x + 1
            # ccc: setup-end
            return x

        with pytest.raises(TransformError, match="duplicate"):
            instrument(bad)

    def test_empty_setup_section(self):
        def bad(ctx):
            # ccc: setup-end
            return 1

        with pytest.raises(TransformError, match="empty setup"):
            instrument(bad)

    def test_duplicate_loop_name_rejected(self):
        """Regression (code review): counters and completion tokens are
        keyed by loop name — reusing one silently skipped the second
        loop (sequential) or corrupted the counter (nested)."""

        def bad(ctx):
            # ccc: save(acc)
            acc = 0.0
            # ccc: setup-end
            # ccc: loop(a)
            for i in range(3):
                acc = acc + 1.0
            # ccc: loop(a)
            for i in range(4):
                acc = acc + 10.0
            return acc

        with pytest.raises(TransformError, match="duplicate ccc: loop"):
            instrument(bad)

    def test_marked_loop_inside_unmarked_loop_rejected(self):
        """A resumable loop under an unmarked loop cannot restore (the
        enclosing position is invisible to the loop-position stack)."""

        def bad(ctx):
            # ccc: save(acc)
            acc = 0.0
            # ccc: setup-end
            for outer in range(3):
                # ccc: loop(inner)
                for i in range(2):
                    acc = acc + 1.0
            return acc

        with pytest.raises(TransformError, match="unmarked loop"):
            instrument(bad)

    def test_marked_loop_inside_unmarked_while_rejected(self):
        def bad(ctx):
            # ccc: save(acc, n)
            acc = 0.0
            n = 0
            # ccc: setup-end
            while n < 2:
                n = n + 1
                # ccc: loop(inner)
                for i in range(2):
                    acc = acc + 1.0
            return acc

        with pytest.raises(TransformError, match="unmarked loop"):
            instrument(bad)

    def test_save_in_unsupported_position(self):
        def bad(ctx):
            if True:
                # ccc: save(x)
                x = 1.0
            return x

        with pytest.raises(TransformError, match="unsupported position"):
            instrument(bad)


def test_communicating_instrumented_app():
    def comm_app(ctx):
        # ccc: save(acc)
        acc = 0.0
        # ccc: setup-end
        comm = ctx.comm
        r = ctx.rank
        s = ctx.size
        # ccc: loop(i)
        for i in range(8):
            # ccc: checkpoint
            comm.Send(np.array([float(i + r)]), dest=(r + 1) % s, tag=1)
            buf = np.zeros(1)
            comm.Recv(buf, source=(r - 1) % s, tag=1)
            acc = acc + float(buf[0])
        return acc

    app = instrument(comm_app)
    ref = run_original(app, 3)
    ref.raise_errors()
    res = run_fault_tolerant(
        app, 3, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=2e-4),
        fault_plan=FaultPlan([FaultSpec(rank=1, at_time=5e-4)]))
    assert res.returns == ref.returns
