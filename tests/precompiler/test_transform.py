"""AST instrumentation: the compile-time transformation end-to-end."""

import numpy as np
import pytest

from repro.core import C3Config, run_fault_tolerant, run_original
from repro.mpi import FaultPlan, FaultSpec
from repro.precompiler import TransformError, instrument
from repro.storage import InMemoryStorage


def simple_app(ctx):
    # ccc: save(x, total)
    x = np.zeros(4)
    total = 0.0
    # ccc: setup-end
    # ccc: loop(it)
    for it in range(10):
        # ccc: checkpoint
        x = x + it
        total = total + float(x.sum())
        ctx.compute(1e-4)
    return total


class TestInstrumentation:
    def test_metadata(self):
        app = instrument(simple_app)
        assert app.__ccc_saved__ == ["total", "x"]
        assert app.__ccc_directives__ == 4
        assert app.__wrapped__ is simple_app

    def test_saved_variables_live_in_state(self):
        app = instrument(simple_app)

        def probe(ctx):
            app(ctx)
            return sorted(k for k in ctx.state if not k.startswith("__"))

        result = run_original(probe, 1)
        result.raise_errors()
        assert result.returns[0] == ["total", "x"]

    def test_loop_is_resumable(self):
        app = instrument(simple_app)

        def probe(ctx):
            app(ctx)
            return ctx.state["__loop_it"]

        result = run_original(probe, 1)
        result.raise_errors()
        assert result.returns[0] == 10

    def test_runs_identically_to_plain_logic(self):
        app = instrument(simple_app)
        result = run_original(app, 2)
        result.raise_errors()
        # hand computation: total = sum over it of sum(x_it)
        x = np.zeros(4)
        total = 0.0
        for it in range(10):
            x = x + it
            total += x.sum()
        assert result.returns == [total, total]


class TestRecovery:
    def test_instrumented_app_survives_failure(self):
        app = instrument(simple_app)
        ref = run_original(app, 2)
        ref.raise_errors()
        res = run_fault_tolerant(
            app, 2, storage=InMemoryStorage(),
            config=C3Config(checkpoint_interval=3e-4),
            fault_plan=FaultPlan([FaultSpec(rank=0, at_time=6e-4)]))
        assert res.restarts == 1
        assert res.returns == ref.returns


class TestRejections:
    def test_missing_ctx_parameter(self):
        def no_ctx(x):
            return x

        with pytest.raises(TransformError, match="ctx"):
            instrument(no_ctx)

    def test_leaked_setup_variable(self):
        def leaky(ctx):
            # ccc: save(x)
            x = 1.0
            helper = 2.0
            # ccc: setup-end
            return x + helper  # helper is used but not saved

        with pytest.raises(TransformError, match="helper"):
            instrument(leaky)

    def test_loop_requires_range(self):
        def bad_loop(ctx):
            items = [1, 2]
            # ccc: loop(i)
            for i in items:
                pass

        with pytest.raises(TransformError, match="range"):
            instrument(bad_loop)

    def test_nested_function_rejected_when_touching_saved(self):
        def nested(ctx):
            # ccc: save(x)
            x = 1.0
            # ccc: setup-end
            def inner():
                return x
            return inner()

        with pytest.raises(TransformError):
            instrument(nested)

    def test_ctx_cannot_be_saved(self):
        def bad(ctx):
            # ccc: save(ctx)
            pass

        with pytest.raises(TransformError):
            instrument(bad)


def test_communicating_instrumented_app():
    def comm_app(ctx):
        # ccc: save(acc)
        acc = 0.0
        # ccc: setup-end
        comm = ctx.comm
        r = ctx.rank
        s = ctx.size
        # ccc: loop(i)
        for i in range(8):
            # ccc: checkpoint
            comm.Send(np.array([float(i + r)]), dest=(r + 1) % s, tag=1)
            buf = np.zeros(1)
            comm.Recv(buf, source=(r - 1) % s, tag=1)
            acc = acc + float(buf[0])
        return acc

    app = instrument(comm_app)
    ref = run_original(app, 3)
    ref.raise_errors()
    res = run_fault_tolerant(
        app, 3, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=2e-4),
        fault_plan=FaultPlan([FaultSpec(rank=1, at_time=5e-4)]))
    assert res.returns == ref.returns
