"""All benchmark applications: determinism, C3-equivalence, recovery."""

import numpy as np
import pytest

from repro.apps import APPS
from repro.core import C3Config, run_c3, run_fault_tolerant, run_original
from repro.mpi import FaultPlan, FaultSpec
from repro.storage import InMemoryStorage

APP_NAMES = sorted(APPS)


@pytest.mark.parametrize("name", APP_NAMES)
def test_original_run_is_deterministic(name):
    app = APPS[name]
    a = run_original(app, 4)
    a.raise_errors()
    b = run_original(app, 4)
    b.raise_errors()
    assert a.returns == b.returns


def _close(a, b):
    """Equality up to reduction-order rounding.

    C3 transforms reductions (Reduce -> Gather + rank-ordered fold), so
    the floating-point summation order differs from the native binomial
    tree; MPI itself guarantees no particular order.  Everything else is
    bit-exact.
    """
    return all(abs(x - y) <= 1e-9 * max(1.0, abs(x)) for x, y in zip(a, b))


@pytest.mark.parametrize("name", APP_NAMES)
def test_c3_matches_original(name):
    app = APPS[name]
    ref = run_original(app, 4)
    ref.raise_errors()
    result, _ = run_c3(app, 4, storage=InMemoryStorage(), config=C3Config())
    result.raise_errors()
    assert _close(result.returns, ref.returns)


@pytest.mark.parametrize("name", APP_NAMES)
def test_recovery_exact(name):
    app = APPS[name]
    ref = run_original(app, 4)
    ref.raise_errors()
    T = ref.virtual_time
    res = run_fault_tolerant(
        app, 4, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=T * 0.15),
        fault_plan=FaultPlan([FaultSpec(rank=1, at_time=T * 0.55)]),
        wall_timeout=120)
    assert res.restarts == 1
    assert _close(res.returns, ref.returns)


@pytest.mark.parametrize("name,procs", [("CG", 2), ("LU", 6), ("SP", 3),
                                        ("MG", 5), ("FT", 2), ("IS", 3),
                                        ("SMG2000", 6), ("HPL", 5)])
def test_apps_run_at_odd_sizes(name, procs):
    result = run_original(APPS[name], procs)
    result.raise_errors()


def test_hpl_residual_is_small():
    result = run_original(APPS["HPL"], 4)
    result.raise_errors()
    # the checksum of residuals must be tiny: the factorization solved Ax=b
    assert abs(result.returns[0]) < 1e-6


def test_heat_converges_to_linear_profile():
    from repro.apps.heat import heat

    def app(ctx):
        heat(ctx, local_n=16, niter=400, t_left=10.0, t_right=0.0)
        return ctx.state.u.tolist()

    result = run_original(app, 2)
    result.raise_errors()
    profile = np.array(result.returns[0] + result.returns[1])
    # linear ramp: second differences vanish
    assert np.abs(np.diff(profile, 2)).max() < 0.05


def test_ep_counts_are_conserved():
    from repro.apps.ep import ep

    def app(ctx):
        return ep(ctx, pairs_per_batch=512, batches=3)

    a = run_original(app, 4)
    a.raise_errors()
    b = run_original(app, 2)
    b.raise_errors()
    # EP is embarrassingly parallel per rank: results depend on rank count,
    # but each run is internally consistent across ranks
    assert len(set(a.returns)) == 1
    assert len(set(b.returns)) == 1


def test_smg_mid_iteration_pragma_recovery():
    """SMG2000 has pragmas inside the V-cycle; failures landing between
    them must recover through the phase guards."""
    app = APPS["SMG2000"]
    ref = run_original(app, 4)
    ref.raise_errors()
    T = ref.virtual_time
    for frac in (0.3, 0.5, 0.8):
        res = run_fault_tolerant(
            app, 4, storage=InMemoryStorage(),
            config=C3Config(checkpoint_interval=T * 0.12),
            fault_plan=FaultPlan([FaultSpec(rank=2, at_time=T * frac)]),
            wall_timeout=120)
        assert _close(res.returns, ref.returns), f"mismatch at frac={frac}"
