"""Shared numeric kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.kernels import (
    block_partition, checksum, csr_matvec, grid_2d, seeded_rng, sparse_rows,
)


class TestSeededRng:
    def test_deterministic(self):
        a = seeded_rng("x", 1, 2).standard_normal(5)
        b = seeded_rng("x", 1, 2).standard_normal(5)
        assert np.array_equal(a, b)

    def test_distinct_streams(self):
        a = seeded_rng("x", 1).standard_normal(5)
        b = seeded_rng("x", 2).standard_normal(5)
        assert not np.array_equal(a, b)


class TestSparse:
    def test_csr_structure(self):
        indptr, indices, values = sparse_rows("t", 0, 10, 40, 6)
        assert len(indptr) == 11
        assert indptr[-1] == len(indices) == len(values)
        assert indices.max() < 40

    def test_diagonal_present_and_dominant(self):
        indptr, indices, values = sparse_rows("t", 1, 8, 32, 5)
        row_start = 1 * 8
        for i in range(8):
            cols = indices[indptr[i]:indptr[i + 1]]
            vals = values[indptr[i]:indptr[i + 1]]
            diag_mask = cols == row_start + i
            assert diag_mask.sum() == 1
            assert vals[diag_mask][0] > np.abs(vals[~diag_mask]).sum()

    def test_matvec_matches_dense(self):
        n = 16
        indptr, indices, values = sparse_rows("t", 0, n, n, 4)
        dense = np.zeros((n, n))
        for i in range(n):
            dense[i, indices[indptr[i]:indptr[i + 1]]] = \
                values[indptr[i]:indptr[i + 1]]
        x = np.arange(n, dtype=np.float64)
        assert np.allclose(csr_matvec(indptr, indices, values, x), dense @ x)


class TestPartition:
    @given(n=st.integers(1, 100), p=st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_block_partition_covers_exactly(self, n, p):
        covered = []
        for r in range(p):
            start, count = block_partition(n, p, r)
            covered.extend(range(start, start + count))
        assert covered == list(range(n))

    @given(p=st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_grid_2d_factors(self, p):
        a, b = grid_2d(p)
        assert a * b == p
        assert a <= b


class TestChecksum:
    def test_order_sensitive(self):
        assert checksum([1.0, 2.0]) != checksum([2.0, 1.0])

    def test_deterministic(self):
        a = np.arange(10.0)
        assert checksum(a) == checksum(a.copy())

    def test_multiple_arrays(self):
        assert checksum([1.0], [2.0]) == checksum([1.0]) + checksum([2.0])
