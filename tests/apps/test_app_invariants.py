"""Application-specific invariants (beyond the generic recovery matrix)."""

import numpy as np
import pytest

from repro.apps import APPS
from repro.apps.kernels import checksum
from repro.core import C3Config, run_c3, run_original
from repro.storage import InMemoryStorage


class TestCG:
    def test_rho_stays_finite_and_positive(self):
        def probe(ctx):
            APPS["CG"](ctx, local_n=32, niter=20)
            return float(ctx.state.rho)

        result = run_original(probe, 4)
        result.raise_errors()
        for rho in result.returns:
            assert np.isfinite(rho) and rho >= 0

    def test_zeta_monotone_accumulation(self):
        def probe(ctx):
            APPS["CG"](ctx, local_n=16, niter=10)
            return float(ctx.state.zeta)

        result = run_original(probe, 2)
        result.raise_errors()
        assert all(0 < z <= 10 for z in result.returns)


class TestLU:
    def test_wavefront_values_bounded(self):
        def probe(ctx):
            APPS["LU"](ctx, local_nx=12, local_ny=12, niter=20)
            return float(np.abs(ctx.state.u).max())

        result = run_original(probe, 4)
        result.raise_errors()
        assert all(np.isfinite(m) and m < 100 for m in result.returns)

    def test_corner_ranks_have_boundary_neighbors(self):
        # 2x2 grid: every rank is a corner; still runs without deadlock
        result = run_original(APPS["LU"], 4)
        result.raise_errors()


class TestSPBT:
    def test_bt_heavier_than_sp(self):
        sp_t = run_original(APPS["SP"], 4)
        bt_t = run_original(APPS["BT"], 4)
        sp_t.raise_errors()
        bt_t.raise_errors()
        # BT models denser block solves: more charged work per sweep
        assert bt_t.virtual_time > sp_t.virtual_time

    def test_row_len_padded_to_rank_count(self):
        def probe(ctx):
            APPS["SP"](ctx, local_rows=4, row_len=10, niter=2)
            return ctx.state.u.shape[1]

        result = run_original(probe, 4)
        result.raise_errors()
        assert all(w % 4 == 0 for w in result.returns)


class TestMG:
    def test_hierarchy_shapes(self):
        def probe(ctx):
            APPS["MG"](ctx, local_n=64, levels=4, niter=2)
            return [ctx.state[f"v{lv}"].shape[0] for lv in range(4)]

        result = run_original(probe, 2)
        result.raise_errors()
        assert result.returns[0] == [64, 32, 16, 8]

    def test_residual_positive(self):
        def probe(ctx):
            APPS["MG"](ctx, local_n=32, levels=3, niter=4)
            return ctx.state.resid

        result = run_original(probe, 2)
        result.raise_errors()
        assert all(r > 0 for r in result.returns)


class TestEP:
    def test_counts_sum_to_accepted_pairs(self):
        def probe(ctx):
            APPS["EP"](ctx, pairs_per_batch=2048, batches=3)
            return int(ctx.state.counts.sum())

        result = run_original(probe, 2)
        result.raise_errors()
        # the polar method accepts ~ pi/4 of the pairs
        for n in result.returns:
            assert 0.6 * 3 * 2048 < n < 0.95 * 3 * 2048

    def test_tiny_checkpoint_footprint(self):
        storage = InMemoryStorage()
        result, stats = run_c3(APPS["EP"], 2, storage=storage,
                               config=C3Config(checkpoint_interval=1e-4,
                                               max_checkpoints=1))
        result.raise_errors()
        # EP's whole state is a cursor + ten counters: well under 4 KiB
        assert stats[0].last_checkpoint_bytes < 4096


class TestFT:
    def test_spectrum_damps_over_time(self):
        def probe(ctx):
            APPS["FT"](ctx, local_rows=4, row_len=32, niter=8)
            return float(np.abs(ctx.state.field).max())

        result = run_original(probe, 2)
        result.raise_errors()
        assert all(np.isfinite(m) for m in result.returns)

    def test_complex_state_survives_checkpoint(self):
        ref = run_original(APPS["FT"], 2)
        ref.raise_errors()
        result, _ = run_c3(APPS["FT"], 2, storage=InMemoryStorage(),
                           config=C3Config(checkpoint_interval=2e-4))
        result.raise_errors()
        assert result.returns == ref.returns


class TestIS:
    def test_bucket_invariant_enforced_internally(self):
        # is_sort raises AssertionError internally if any key lands in the
        # wrong bucket; a clean run is the assertion
        result = run_original(APPS["IS"], 4)
        result.raise_errors()


class TestHPL:
    def test_checkpoint_excludes_matrix(self):
        storage = InMemoryStorage()
        result, stats = run_c3(APPS["HPL"], 2, storage=storage,
                               config=C3Config(checkpoint_interval=1e-9,
                                               max_checkpoints=1))
        result.raise_errors()
        # the 96x96 matrix alone would be ~74 kB; the checkpoint holds only
        # the trial cursor and residuals (recomputation, Section 8)
        assert stats[0].last_checkpoint_bytes < 8192

    def test_all_ranks_agree_on_residuals(self):
        def probe(ctx):
            APPS["HPL"](ctx, n=64, block=16, trials=2)
            return checksum(ctx.state.residuals)

        result = run_original(probe, 3)
        result.raise_errors()
        assert len(set(result.returns)) == 1


class TestSMG2000:
    def test_message_heavy_profile(self):
        """SMG2000 sends far more (and smaller) messages than CG at the
        same scale — the property behind the Velocity-2 anomaly."""
        smg, _ = run_c3(APPS["SMG2000"], 4, storage=InMemoryStorage(),
                        config=C3Config())
        cg, _ = run_c3(APPS["CG"], 4, storage=InMemoryStorage(),
                       config=C3Config())
        smg.raise_errors()
        cg.raise_errors()
        smg_msgs = sum(smg.sent_counts)
        cg_msgs = sum(cg.sent_counts)
        smg_avg = sum(smg.sent_bytes) / max(1, smg_msgs)
        cg_avg = sum(cg.sent_bytes) / max(1, cg_msgs)
        assert smg_msgs > 2 * cg_msgs
        assert smg_avg < cg_avg
