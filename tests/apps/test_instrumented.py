"""Precompiler-instrumented kernels: equivalence, metadata, recovery.

The ``*+ccc`` kernels are the *pre*-precompiler sources of six app
kernels, run through ``repro.precompiler.instrument`` at import.  They
must (a) compute bit-for-bit what the handwritten Context-API versions
compute, (b) expose their saved-variable sets, and (c) survive the
recovery campaign's kill/restart/verify pipeline at **every** kill
timing — including kills that land mid-way through MG's nested
resumable loops, where the restart resumes a two-deep loop-position
stack.
"""

import pytest

from repro.apps import APPS, HANDWRITTEN_COUNTERPART, INSTRUMENTED_APPS
from repro.core import run_original
from repro.harness.campaign import (
    CAMPAIGN_PARAMS, COLLECTIVE_APPS, INSTRUMENTED_KERNELS, KILL_TIMINGS,
    build_matrix, run_campaign,
)


def _with_params(app, params):
    return lambda ctx: app(ctx, **params)


class TestEquivalence:
    @pytest.mark.parametrize("name", sorted(INSTRUMENTED_APPS))
    def test_bitwise_equal_to_handwritten(self, name):
        """The instrumented kernel is the same computation, bit for bit."""
        params = CAMPAIGN_PARAMS[HANDWRITTEN_COUNTERPART[name]]
        inst = run_original(_with_params(APPS[name], params), 4)
        inst.raise_errors()
        hand = run_original(
            _with_params(APPS[HANDWRITTEN_COUNTERPART[name]], params), 4)
        hand.raise_errors()
        assert inst.returns == hand.returns

    def test_registry_exposes_instrumented_kernels(self):
        for name in INSTRUMENTED_KERNELS:
            assert name in APPS
            assert APPS[name].__ccc_saved__  # precompiler metadata present


class TestMetadata:
    def test_saved_sets(self):
        assert APPS["heat+ccc"].__ccc_saved__ == ["dmax", "u"]
        assert APPS["EP+ccc"].__ccc_saved__ == ["counts", "sx", "sy"]
        # ring's payload array is saved through the ccc: call guard
        assert "x" in APPS["ring+ccc"].__ccc_saved__
        # CG's while-loop cursor is saved state
        assert "it" in APPS["CG+ccc"].__ccc_saved__

    def test_campaign_params_cover_instrumented_kernels(self):
        for name in INSTRUMENTED_KERNELS:
            assert CAMPAIGN_PARAMS[name] == \
                CAMPAIGN_PARAMS[HANDWRITTEN_COUNTERPART[name]]


class TestCampaignRecovery:
    """Kill/restart/verify for the instrumented kernels through the same
    scenario pipeline the CLI and CI run."""

    @pytest.mark.parametrize("kill", sorted(KILL_TIMINGS))
    def test_nested_loop_kernel_survives_every_kill_timing(self, kill):
        """MG+ccc at every campaign kill timing: the restart must resume
        the (cycle, lv_down) position stack and verify bitwise.  The
        group-commit tear windows only exist on the WAL engine, so those
        cells run there."""
        storage = "wal" if KILL_TIMINGS[kill][4] else "memory"
        (scenario,) = build_matrix(["MG+ccc"], ["testing"], [kill],
                                   storage=storage)
        report = run_campaign([scenario], parallel=False)
        row = report.rows[0]
        assert row["passed"], row["failure"]
        deterministic = KILL_TIMINGS[kill][1]
        if deterministic:
            assert row["restarts"] >= 1
            assert row["verified_recovery"] and row["verified_clean"]

    @pytest.mark.parametrize("app", [k for k in INSTRUMENTED_KERNELS
                                     if k != "MG+ccc"])
    def test_every_instrumented_kernel_recovers(self, app):
        kill = "mid_collective" if app in COLLECTIVE_APPS else "mid_run"
        (scenario,) = build_matrix([app], ["testing"], [kill])
        report = run_campaign([scenario], parallel=False)
        row = report.rows[0]
        assert row["passed"], row["failure"]
        assert row["restarts"] >= 1
        assert row["verified_recovery"] and row["verified_clean"]

    def test_while_loop_kernel_recovers_from_epoch_boundary(self):
        """CG+ccc's main loop is an instrumented *while*; an epoch-boundary
        kill must restart into the while with the saved cursor."""
        (scenario,) = build_matrix(["CG+ccc"], ["testing"],
                                   ["epoch_boundary"])
        report = run_campaign([scenario], parallel=False)
        row = report.rows[0]
        assert row["passed"], row["failure"]
        assert row["restarts"] >= 1
