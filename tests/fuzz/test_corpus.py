"""Regression-corpus replayer.

Every JSON under ``tests/fuzz/corpus/`` is one pinned fuzz schedule —
the smoke seed set (one per campaign kill-timing class and one per
storage-fault class) plus a minimized repro for every bug the fuzzer has
found.  Each entry replays deterministically through the full
kill/restart/verify pipeline and must reproduce its pinned verdict
forever; dropping a file from the corpus is the only way to retire a
repro.
"""

from __future__ import annotations

import glob
import json
import os

import pytest

from repro.harness.fuzz import load_schedule, run_schedule

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))

#: golden runs shared across entries (same app/platform/nprocs/params)
_CACHE: dict = {}


def test_corpus_is_not_empty():
    assert len(CORPUS) >= 14, (
        "the pinned corpus must at least cover every campaign kill-timing "
        "class and every storage-fault class")


@pytest.mark.parametrize(
    "path", CORPUS, ids=[os.path.basename(p)[:-5] for p in CORPUS])
def test_corpus_entry_replays(path):
    with open(path) as f:
        entry = json.load(f)
    sched = load_schedule(path)
    record = run_schedule(sched, _CACHE)
    assert record["verdict"] == entry["expect"], (
        f"{os.path.basename(path)}: expected {entry['expect']!r}, got "
        f"{record['verdict']!r} ({record['failure']})\n"
        f"note: {entry.get('note', '')}")
    if record["verdict"] == "pass":
        assert record["verified"]


def test_corpus_schedules_declare_current_format():
    for path in CORPUS:
        with open(path) as f:
            entry = json.load(f)
        assert entry["schedule"]["format"] == 1
        # the file name pins the content digest; a drive-by edit that
        # changes the schedule without renaming the file is an error
        digest = load_schedule(path).digest()
        assert digest in os.path.basename(path), (
            f"{os.path.basename(path)} content digest {digest} does not "
            "match its file name; regenerate the entry")
