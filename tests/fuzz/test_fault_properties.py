"""Property-based tests for the fault-schedule vocabulary.

Seeded/derandomized hypothesis strategies over :class:`FaultSpec`,
:class:`FaultPlan`, and :class:`StorageFault`: at-most-once firing (by
instance, not by value), exact ``unfired()`` bookkeeping, JSON-codec
round-trips, and construction-time rejection of invalid specs.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi.faults import TRIGGER_FIELDS, FaultPlan, FaultSpec
from repro.storage.faulty import STORAGE_FAULT_KINDS, StorageFault

SETTINGS = settings(max_examples=60, deadline=None, derandomize=True)


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

def _trigger_value(name):
    if name == "at_time":
        return st.floats(min_value=0.001, max_value=1e3,
                         allow_nan=False, allow_infinity=False)
    if name == "probability":
        return st.floats(min_value=1e-4, max_value=0.5,
                         allow_nan=False, allow_infinity=False)
    return st.integers(min_value=1, max_value=50)


@st.composite
def fault_specs(draw):
    triggers = draw(st.lists(st.sampled_from(TRIGGER_FIELDS), min_size=1,
                             max_size=3, unique=True))
    kw = {name: draw(_trigger_value(name)) for name in triggers}
    if draw(st.booleans()):
        kw["reason"] = draw(st.sampled_from(
            ("injected fail-stop fault", "power loss", "node crash")))
    return FaultSpec(rank=draw(st.integers(0, 7)), **kw)


@st.composite
def storage_faults(draw):
    kind = draw(st.sampled_from(STORAGE_FAULT_KINDS))
    return StorageFault(
        kind=kind,
        after_ops=draw(st.integers(1, 100)),
        path_prefix=draw(st.sampled_from(("", "ckpt/", "wal/"))),
        keep_fraction=draw(st.floats(min_value=0.0, max_value=0.999,
                                     allow_nan=False)),
        bit=draw(st.integers(0, 1 << 16)),
        count=draw(st.integers(1, 5)),
    )


# ---------------------------------------------------------------------------
# Firing semantics
# ---------------------------------------------------------------------------

@SETTINGS
@given(st.lists(fault_specs(), min_size=1, max_size=8))
def test_mark_fired_is_at_most_once_per_instance(specs):
    plan = FaultPlan(specs)
    for spec in plan.all_specs():
        assert plan.mark_fired(spec) is True
        assert plan.mark_fired(spec) is False      # never twice
    assert len(plan.fired) == len(specs)
    assert plan.unfired() == []


@SETTINGS
@given(fault_specs())
def test_duplicate_specs_fire_independently(spec):
    # two *equal* specs are distinct schedule entries: each fires once
    twin = FaultSpec.from_dict(spec.to_dict())
    assert twin == spec
    plan = FaultPlan([spec, twin])
    assert plan.mark_fired(spec) is True
    assert plan.mark_fired(spec) is False
    assert plan.unfired() == [twin]
    assert plan.mark_fired(twin) is True
    assert plan.fired == [spec, twin]


@SETTINGS
@given(st.lists(fault_specs(), min_size=1, max_size=8),
       st.sets(st.integers(0, 7)))
def test_unfired_is_exactly_the_complement(specs, fire_indices):
    plan = FaultPlan(specs)
    every = list(plan.all_specs())
    chosen = [every[i % len(every)] for i in sorted(fire_indices)]
    for spec in chosen:
        plan.mark_fired(spec)
    fired_ids = {id(s) for s in plan.fired}
    assert [id(s) for s in plan.unfired()] == [
        id(s) for s in every if id(s) not in fired_ids]
    # rearm restores full eligibility
    plan.rearm()
    assert plan.fired == []
    assert [id(s) for s in plan.unfired()] == [id(s) for s in every]


# ---------------------------------------------------------------------------
# Codec round-trips
# ---------------------------------------------------------------------------

@SETTINGS
@given(fault_specs())
def test_fault_spec_roundtrips_through_json(spec):
    wire = json.loads(json.dumps(spec.to_dict()))
    back = FaultSpec.from_dict(wire)
    assert back == spec
    assert back.describe() == spec.describe()
    assert back.kind() == spec.kind()


@SETTINGS
@given(storage_faults())
def test_storage_fault_roundtrips_through_json(fault):
    wire = json.loads(json.dumps(fault.to_dict()))
    back = StorageFault.from_dict(wire)
    assert back == fault
    assert back.describe() == fault.describe()


# ---------------------------------------------------------------------------
# Invalid specs fail at construction
# ---------------------------------------------------------------------------

def test_triggerless_spec_is_rejected():
    with pytest.raises(ValueError):
        FaultSpec(rank=0)


@pytest.mark.parametrize("field", ("in_collective", "in_drain", "at_commit",
                                   "at_group_commit"))
def test_one_based_triggers_reject_zero(field):
    with pytest.raises(ValueError):
        FaultSpec(rank=0, **{field: 0})


def test_unknown_spec_field_is_rejected():
    with pytest.raises(ValueError, match="unknown FaultSpec fields"):
        FaultSpec.from_dict({"rank": 0, "at_epoch": 1, "at_times": 0.5})


@pytest.mark.parametrize("bad", (
    dict(kind="melt"),
    dict(kind="torn_write", after_ops=0),
    dict(kind="torn_write", keep_fraction=1.0),
    dict(kind="bit_rot", bit=-1),
    dict(kind="enospc", count=0),
))
def test_invalid_storage_faults_are_rejected(bad):
    with pytest.raises(ValueError):
        StorageFault(**bad)


def test_unknown_storage_fault_field_is_rejected():
    with pytest.raises(ValueError, match="unknown StorageFault fields"):
        StorageFault.from_dict({"kind": "enospc", "after_op": 3})
