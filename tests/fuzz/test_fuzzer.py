"""Unit tests for the coverage-guided fault fuzzer itself."""

from __future__ import annotations

import json
import random

import pytest

from repro.harness.fuzz import (REQUIRED_COVERAGE, REQUIRED_STORAGE,
                                REQUIRED_WINDOWS, FuzzSchedule, fuzz,
                                load_schedule, minimize, mutate,
                                random_schedule, run_schedule,
                                seed_schedules, write_corpus_entry)

_CACHE: dict = {}


# ---------------------------------------------------------------------------
# Schedule model + codec
# ---------------------------------------------------------------------------

def test_schedule_roundtrips_through_json():
    sched = FuzzSchedule("x", "ring", 4, storage="wal", interval_frac=0.1,
                         seed=9, kills=[{"rank": 1, "at_epoch": 2}],
                         storage_faults=[{"kind": "enospc", "after_ops": 3}])
    wire = json.loads(json.dumps(sched.to_dict()))
    back = FuzzSchedule.from_dict(wire)
    assert back == sched
    assert back.digest() == sched.digest()


@pytest.mark.parametrize("bad", (
    dict(label="x", app="nosuch", nprocs=2),
    dict(label="x", app="ring", nprocs=2, platform="cray"),
    dict(label="x", app="ring", nprocs=2, storage="tape"),
    dict(label="x", app="ring", nprocs=0),
    dict(label="x", app="ring", nprocs=2, interval_frac=0.0),
    dict(label="x", app="ring", nprocs=2, kills=[{"rank": 5, "frac": 0.5}]),
    dict(label="x", app="ring", nprocs=2, kills=[{"rank": 0, "frac": 1.5}]),
    dict(label="x", app="ring", nprocs=2,
         kills=[{"rank": 0, "at_typo": 1}]),
    dict(label="x", app="ring", nprocs=2,
         storage_faults=[{"kind": "melt"}]),
))
def test_invalid_schedules_are_rejected(bad):
    with pytest.raises(ValueError):
        FuzzSchedule(**bad)


def test_unknown_schedule_field_is_rejected():
    with pytest.raises(ValueError, match="unknown FuzzSchedule fields"):
        FuzzSchedule.from_dict({"label": "x", "app": "ring", "nprocs": 2,
                                "engine": "threads"})


def test_future_format_is_rejected():
    with pytest.raises(ValueError, match="unsupported schedule format"):
        FuzzSchedule.from_dict({"format": 99, "label": "x", "app": "ring",
                                "nprocs": 2})


def test_corpus_writer_roundtrips(tmp_path):
    sched = FuzzSchedule("pinned", "ring", 2,
                         kills=[{"rank": 0, "frac": 0.5}])
    record = {"verdict": "pass", "failure_class": None, "failure": None}
    path = write_corpus_entry(str(tmp_path), sched, record, note="why")
    assert load_schedule(path) == sched
    with open(path) as f:
        entry = json.load(f)
    assert entry["expect"] == "pass"
    assert entry["note"] == "why"


# ---------------------------------------------------------------------------
# Seeds, generator, mutator
# ---------------------------------------------------------------------------

def test_seed_schedules_cover_required_windows_statically():
    seeds = seed_schedules()
    assert len({s.label for s in seeds}) == len(seeds)
    windows = set()
    for sched in seeds:
        for kill in sched.kills:
            probe = dict(kill)
            if "frac" in probe:
                windows.add("window:at_time")
                continue
            for key in probe:
                if key not in ("rank", "reason"):
                    windows.add(f"window:{key}")
    storage_kinds = {f"storage:{sf['kind']}"
                     for sched in seeds for sf in sched.storage_faults}
    assert REQUIRED_WINDOWS <= windows
    assert REQUIRED_STORAGE <= storage_kinds
    for sched in seeds:
        assert not (sched.needs_wal() and sched.storage != "wal")


def test_generator_and_mutator_yield_valid_schedules():
    rng = random.Random(7)
    for i in range(50):
        sched = random_schedule(rng, i)
        assert sched.fault_count() >= 1
        assert not (sched.needs_wal() and sched.storage != "wal")
        child = mutate(rng, sched, i)
        assert child.fault_count() >= 1
        assert not (child.needs_wal() and child.storage != "wal")
        # both survive the codec
        assert FuzzSchedule.from_dict(sched.to_dict()) == sched
        assert FuzzSchedule.from_dict(child.to_dict()) == child


def test_generator_is_deterministic_per_seed():
    a = [random_schedule(random.Random(3), i).to_dict() for i in range(10)]
    b = [random_schedule(random.Random(3), i).to_dict() for i in range(10)]
    assert a == b


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------

def test_run_schedule_reports_window_and_path_coverage():
    sched = FuzzSchedule("probe", "ring", 3,
                         kills=[{"rank": 0, "frac": 0.6}])
    record = run_schedule(sched, _CACHE)
    assert record["verdict"] == "pass"
    assert record["verified"] is True
    assert record["restarts"] == 1
    assert "window:at_time" in record["coverage"]
    assert "path:commit" in record["coverage"]
    assert record["schedule"] == sched.to_dict()


def test_run_schedule_replays_bit_identically():
    sched = FuzzSchedule("replay", "heat", 3, interval_frac=0.1,
                         kills=[{"rank": 1, "at_epoch": 2}],
                         storage_faults=[{"kind": "bit_rot", "after_ops": 4,
                                          "path_prefix": "ckpt/"}])
    first = run_schedule(sched, _CACHE)
    second = run_schedule(sched, _CACHE)
    assert first == second


def test_probabilistic_livelock_is_inconclusive_not_failing():
    # a storm with more near-certain kills than the restart budget can
    # never finish; that is an inconclusive schedule, not a protocol bug
    # (each spec fires at most once, and at most one spec per rank fires
    # per execution, so 6 specs need >= 3 executions)
    sched = FuzzSchedule("storm-hard", "ring", 2,
                         kills=[{"rank": r % 2, "probability": 0.95}
                                for r in range(6)])
    record = run_schedule(sched, _CACHE, max_restarts=2)
    assert record["verdict"] == "inconclusive"
    assert record["failure_class"] == "inconclusive"


# ---------------------------------------------------------------------------
# Minimizer
# ---------------------------------------------------------------------------

def test_minimizer_drops_irrelevant_faults():
    # stub runner: "fails" iff the schedule still has an at_epoch kill;
    # the minimizer must strip everything else and stay failing
    sched = FuzzSchedule(
        "fat", "ring", 4,
        kills=[{"rank": 0, "frac": 0.3}, {"rank": 1, "at_epoch": 2},
               {"rank": 2, "frac": 0.7}],
        storage_faults=[{"kind": "enospc", "after_ops": 9, "count": 3},
                        {"kind": "bit_rot", "after_ops": 2}])

    def stub(cand):
        failing = any("at_epoch" in k for k in cand.kills)
        return {"failure_class": "mismatch" if failing else None,
                "verdict": "fail" if failing else "pass"}

    mini, runs = minimize(sched, stub, "mismatch")
    assert mini.kills == [{"rank": 1, "at_epoch": 2}]
    assert mini.storage_faults == []
    assert mini.fault_count() == 1
    assert runs <= 32


def test_minimizer_shrinks_stretch_counts():
    sched = FuzzSchedule(
        "stretch", "ring", 2,
        storage_faults=[{"kind": "enospc", "after_ops": 1, "count": 4}])

    def stub(cand):
        failing = any(sf["kind"] == "enospc" for sf in cand.storage_faults)
        return {"failure_class": "livelock" if failing else None,
                "verdict": "fail" if failing else "pass"}

    mini, _ = minimize(sched, stub, "livelock")
    assert mini.storage_faults == [{"kind": "enospc", "after_ops": 1}]


# ---------------------------------------------------------------------------
# The guided loop (seeds only: the smoke floor)
# ---------------------------------------------------------------------------

def test_fuzz_smoke_floor_reaches_full_required_coverage():
    report = fuzz(max_schedules=len(seed_schedules()), smoke=True,
                  quiet=True)
    assert report["missing_required"] == []
    assert report["window_coverage_pct"] == 100.0
    assert report["failures"] == []
    assert report["smoke_ok"] is True
    assert set(report["required"]) == REQUIRED_COVERAGE
