"""Shared test helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi import TESTING, run_job


def run(nprocs, main, **kw):
    """Run a job and fail the test on any rank error."""
    result = run_job(nprocs, main, machine=kw.pop("machine", TESTING),
                     wall_timeout=kw.pop("wall_timeout", 60.0), **kw)
    result.raise_errors()
    return result


@pytest.fixture
def storage():
    from repro.storage import InMemoryStorage
    return InMemoryStorage()
