"""Blocking coordinated checkpointing baseline."""

import numpy as np
import pytest

from repro.apps.ring import ring
from repro.baselines.blocking import run_blocking
from repro.core import run_original
from repro.storage import InMemoryStorage, last_committed_global


def test_blocking_run_matches_original():
    ref = run_original(ring, 4)
    ref.raise_errors()
    result, stats = run_blocking(ring, 4, storage=InMemoryStorage(),
                                 interval_pragmas=4)
    result.raise_errors()
    assert result.returns == ref.returns


def test_blocking_commits_checkpoints():
    storage = InMemoryStorage()
    result, stats = run_blocking(ring, 4, storage=storage,
                                 interval_pragmas=5)
    result.raise_errors()
    n = stats[0].checkpoints
    assert n >= 1
    assert last_committed_global(storage, 4) == n


def test_blocking_costs_barrier_stall():
    result, stats = run_blocking(ring, 4, storage=InMemoryStorage(),
                                 interval_pragmas=3)
    result.raise_errors()
    assert all(s.barrier_stall > 0 for s in stats if s)
    assert stats[0].checkpoint_bytes > 0


def test_no_interval_means_no_checkpoints():
    storage = InMemoryStorage()
    result, stats = run_blocking(ring, 3, storage=storage)
    result.raise_errors()
    assert stats[0].checkpoints == 0
    assert storage.list() == []
