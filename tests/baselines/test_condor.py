"""Condor SLC baseline: image accounting and whole-image restore."""

import numpy as np
import pytest

from repro.baselines.condor import CondorCheckpointer, ImageSizes, measure_sizes
from repro.statesave.context import Context
from repro.storage import InMemoryStorage
from repro.testutil import run


def make_ctx():
    holder = {}

    def main(mpi):
        holder["ctx"] = Context(mpi)
        return True

    run(1, main)
    return holder["ctx"]


def test_condor_image_larger_than_c3():
    ctx = make_ctx()
    ctx.state.data = np.zeros(10_000)
    addr = ctx.heap.malloc(50_000)
    ctx.heap.free(addr)  # freed space stays in the image
    sizes = measure_sizes(ctx)
    assert sizes.condor_bytes > sizes.c3_bytes
    assert 0 < sizes.reduction < 1


def test_freed_heap_counted_only_by_condor():
    ctx = make_ctx()
    base = measure_sizes(ctx)
    addr = ctx.heap.malloc(100_000)
    ctx.heap.free(addr)
    after = measure_sizes(ctx)
    assert after.condor_bytes > base.condor_bytes
    assert after.c3_bytes == base.c3_bytes


def test_snapshot_restore_roundtrip():
    ctx = make_ctx()
    ctx.state.x = np.arange(16.0)
    storage = InMemoryStorage()
    ckpt = CondorCheckpointer(storage)
    n = ckpt.snapshot(ctx)
    assert n > 0
    ctx.state.x[:] = 0
    ckpt.restore(ctx)
    assert np.array_equal(ctx.state.x, np.arange(16.0))
    assert ctx.restored


def test_reduction_zero_for_empty_image():
    assert ImageSizes(0, 0).reduction == 0.0
