"""Chandy-Lamport snapshots over the raw engine (the SLC comparator)."""

import numpy as np

from repro.baselines.chandy_lamport import ChandyLamport, MARKER_TAG
from repro.statesave.serializer import dumps
from repro.testutil import run


def test_snapshot_forms_consistent_cut():
    """Token-ring conservation: the sum of snapshotted local states plus
    recorded in-flight messages equals the (constant) number of tokens.

    Chandy-Lamport requires FIFO *consumption*: the receiver must process
    each channel strictly in arrival order (marker vs data).  The app
    therefore probes with ANY_TAG and dispatches on the tag — consuming
    data ahead of a pending marker would break the cut, which is exactly
    the paper's Section-2.4 argument against SLC protocols under MPI's
    tag-based reordering.
    """
    TOKENS = 5
    STEPS = 12

    def main(mpi):
        from repro.mpi.matching import ANY_TAG
        comm = mpi.COMM_WORLD
        rank, size = comm.rank, comm.size
        cl = ChandyLamport(mpi)
        tokens = TOKENS if rank == 0 else 0
        cl.bind_state(lambda: dumps(tokens))
        left = (rank - 1) % size

        def drain_channel():
            nonlocal tokens
            for src in range(size):
                if src == rank:
                    continue
                while True:
                    flag, st = comm.Iprobe(source=src, tag=ANY_TAG)
                    if not flag:
                        break
                    buf = np.zeros(1)
                    comm.Recv(buf, source=src, tag=st.tag)
                    if st.tag == MARKER_TAG:
                        cl.on_marker(src)
                    else:
                        cl.on_message(src, b"T")
                        tokens += 1

        for step in range(STEPS):
            drain_channel()
            if rank == 1 and step == 4 and cl.snapshot is None:
                cl.initiate()
            if tokens > 0:
                comm.Send(np.array([1.0]), dest=(rank + 1) % size, tag=5)
                tokens -= 1
            mpi.compute(1e-5)
        while not cl.complete:
            drain_channel()
            mpi.compute(1e-6)
        from repro.statesave.serializer import loads
        snap_tokens = loads(cl.snapshot)
        in_flight = sum(len(v) for v in cl.channel_messages().values())
        return snap_tokens, in_flight

    result = run(3, main, wall_timeout=60)
    total = sum(s for s, _ in result.returns) + \
        sum(f for _, f in result.returns)
    assert total == TOKENS


def test_marker_triggers_snapshot_on_receiver():
    def main(mpi):
        cl = ChandyLamport(mpi)
        cl.bind_state(lambda: b"state")
        if mpi.rank == 0:
            cl.initiate()
        while not cl.complete:
            cl.poll_markers()
            mpi.compute(1e-6)
        return cl.snapshot is not None

    result = run(3, main, wall_timeout=60)
    assert all(result.returns)
